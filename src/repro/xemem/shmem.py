"""User-visible shared-memory objects.

:class:`ExportedSegment` is what ``xpmem_make`` returns to the exporting
process; :class:`AttachedRegion` is what ``xpmem_attach`` returns to the
attaching process. Both carry a *data view* (:class:`~repro.hw.memory.
MappedRegion`) over the actual frames, so reads and writes through either
side hit the same bytes — the zero-copy property the test suite checks
end to end, including across VM boundaries.

The data view is the simulation's data plane: it is valid as soon as the
object exists. The control plane (page-table state, demand-paging faults,
modeled costs) is what the kernels account separately — e.g. touching a
lazily attached Linux region via ``kernel.touch_pages`` pays the fault
costs even though the view could already read the bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.hw.memory import MappedRegion
from repro.kernels.addrspace import Region
from repro.kernels.process import OSProcess
from repro.xemem.ids import ApId, Permit, SegmentId


@dataclass
class ExportedSegment:
    """An address range exported under a globally unique segid."""

    segid: SegmentId
    proc: OSProcess
    vaddr: int
    npages: int
    permit: Permit
    name: Optional[str] = None
    removed: bool = False
    #: How many grants (apids) other processes currently hold.
    grants_out: int = 0

    @property
    def nbytes(self) -> int:
        return self.npages * 4096

    def view(self) -> MappedRegion:
        """Exporter-side data view over the segment's current frames.

        The exporting process must have populated the pages first (on
        Linux, by touching them or via a served attach's get_user_pages;
        Kitten regions are always populated).
        """
        from repro.kernels.pagetable import PageFault
        from repro.xemem.ids import XememError

        try:
            pfns = self.proc.aspace.table.translate_range(self.vaddr, self.npages)
        except PageFault as fault:
            raise XememError(
                f"segment {self.segid!r} has unpopulated pages (first at "
                f"{fault.vaddr:#x}); touch the region before reading it"
            ) from fault
        return self.proc.kernel.mem.map_region(pfns)


@dataclass
class ApGrant:
    """Attacher-side record of an ``xpmem_get`` grant."""

    apid: ApId
    segid: SegmentId
    proc: OSProcess
    npages: int
    write: bool
    owner_is_local: bool
    released: bool = False


@dataclass
class AttachedRegion:
    """A mapped window into another process's exported segment."""

    apid: ApId
    segid: SegmentId
    proc: OSProcess
    vaddr: int
    npages: int
    #: "remote" (cross-enclave eager map), "linux-lazy" (single-OS Linux),
    #: or "smartmap" (single-OS Kitten).
    kind: str
    #: Kernel region backing the mapping (None for SMARTMAP, which maps
    #: nothing — it aliases the donor's whole table).
    region: Optional[Region] = None
    #: PFNs in the *attacher's* physical namespace (guest PFNs inside a
    #: VM); needed for teardown of VM attachments.
    local_pfns: Optional[np.ndarray] = None
    #: The data view (attacher's window onto the shared bytes).
    view: MappedRegion = None
    detached: bool = False
    #: SMARTMAP bookkeeping: the donor process.
    smartmap_donor: Optional[OSProcess] = None

    @property
    def nbytes(self) -> int:
        return self.npages * 4096

    def write(self, offset: int, data: bytes) -> None:
        """Store bytes through the attachment's data view."""
        self._check_live()
        self.view.write(offset, data)

    def read(self, offset: int, length: int) -> bytes:
        """Load bytes through the attachment's data view."""
        self._check_live()
        return self.view.read(offset, length)

    def as_array(self) -> np.ndarray:
        """Gather the whole attached window into one numpy array (copy)."""
        self._check_live()
        return self.view.as_array()

    def _check_live(self) -> None:
        if self.detached:
            raise RuntimeError(f"attachment {self.apid!r} already detached")
