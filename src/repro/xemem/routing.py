"""Hierarchical command routing and topology discovery (paper §3.2).

Each enclave keeps a :class:`RoutingTable`: the channel it reaches the
name server through, plus a map from enclave IDs to the local channel
that leads toward them. The routing rule is the paper's verbatim: *"When
an enclave receives a message, it searches its map for the destination
enclave ID. If it finds the enclave ID, it forwards the message along the
associated communication channel for that enclave. Otherwise, it
forwards the message through the channel used to reach the name server."*

Discovery is the paper's three steps per enclave: (1) broadcast on every
channel to find a path to the name server, (2) request an enclave ID
through that channel, (3) every forwarder remembers which channel the
request came from, so when the assigned ID flows back it learns the
route. :func:`run_discovery` drives the whole system through those
steps, breadth-first from the name server so a path always exists by the
time an enclave broadcasts.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Optional

from repro.enclave.enclave import Channel, Enclave


class RoutingError(RuntimeError):
    """A message could not be routed (undiscovered enclave, no NS path)."""


class RoutingTable:
    """One enclave's routing state."""

    def __init__(self) -> None:
        #: Channel leading toward the name server (None on the NS itself).
        self.ns_channel: Optional[Channel] = None
        #: enclave id -> channel leading toward that enclave.
        self.routes: Dict[int, Channel] = {}
        self.discovered = False

    def learn(self, enclave_id: int, channel: Channel) -> None:
        """Record that ``enclave_id`` is reached via ``channel``."""
        self.routes[enclave_id] = channel

    def channel_for(self, dst_enclave_id: int) -> Channel:
        """The §3.2 routing rule."""
        channel = self.routes.get(dst_enclave_id)
        if channel is not None:
            return channel
        if self.ns_channel is None:
            raise RoutingError(
                f"no route to enclave {dst_enclave_id} and no name-server path"
            )
        return self.ns_channel


def run_discovery(system) -> Dict[str, int]:
    """Run discovery for every enclave; returns {enclave name: id}.

    The name-server enclave gets ID 0 outright; the rest proceed in BFS
    order from it, each running the module-level discovery exchange
    (broadcast → ID request → routed assignment) as a simulated process.
    """
    ns_enclave: Enclave = system.name_server_enclave
    engine = system.engine

    ns_enclave.enclave_id = 0
    ns_enclave.module.routing.discovered = True

    # BFS order guarantees each enclave has a discovered neighbor.
    # Visited-set keyed by enclave name (stable across host processes),
    # not id(), so discovery order replays identically everywhere.
    order = []
    seen = {ns_enclave.name}
    queue = deque([ns_enclave])
    while queue:
        cur = queue.popleft()
        for channel in cur.channels:
            nxt = channel.other(cur)
            if nxt.name not in seen:
                seen.add(nxt.name)
                order.append(nxt)
                queue.append(nxt)

    for enclave in order:
        engine.run_process(
            enclave.module.discover(), name=f"discover:{enclave.name}"
        )

    return {e.name: e.enclave_id for e in system.enclaves}
