"""Wire commands of the XEMEM protocol.

Every cross-enclave message is a :class:`~repro.enclave.enclave.KernelMessage`
whose payload carries a routing envelope plus command fields:

=====================  =======================================================
field                  meaning
=====================  =======================================================
``src``                sender's enclave id
``dst``                destination enclave id, or ``None`` = "the name
                       server" (segid-addressed commands are resolved to
                       their owner enclave *at* the name server, §4.2)
``req_id``             correlation token for request/response pairs
``reply_to``           on responses: the request's ``req_id``
``error``              on responses: failure string instead of a result
=====================  =======================================================

Command kinds are grouped into the §3.2 discovery/routing protocol, name
server operations, and the Table 1 segment operations.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.enclave.enclave import KernelMessage

# -- discovery / routing (paper §3.2) -------------------------------------------
PING_NS_PATH = "ping_ns_path"
PING_NS_PATH_ACK = "ping_ns_path_ack"
ALLOC_ENCLAVE_ID = "alloc_enclave_id"
ENCLAVE_ID_ASSIGNED = "enclave_id_assigned"

ENCLAVE_DEPART = "enclave_depart"
ENCLAVE_DEPART_ACK = "enclave_depart_ack"

# -- name server operations (paper §3.1, §4.2) ------------------------------------
ALLOC_SEGID = "alloc_segid"
SEGID_ASSIGNED = "segid_assigned"
REMOVE_SEGID = "remove_segid"
REMOVE_SEGID_ACK = "remove_segid_ack"
LOOKUP_NAME = "lookup_name"
LOOKUP_NAME_RESP = "lookup_name_resp"
LIST_NAMES = "list_names"
LIST_NAMES_RESP = "list_names_resp"

# -- failure detection (fault-injection extension) ----------------------------------
ENCLAVE_HEARTBEAT = "enclave_heartbeat"  # one-way liveness beacon to the NS

# -- event notification extension (paper §6.1 future work) ---------------------------
NOTIFY_SUBSCRIBE = "notify_subscribe"
NOTIFY_SUBSCRIBE_ACK = "notify_subscribe_ack"
SIGNAL_REQ = "signal_req"
SIGNAL_ACK = "signal_ack"
SEGID_NOTIFY = "segid_notify"  # one-way fan-out to a subscriber

# -- segment operations (Table 1 flows) ---------------------------------------------
GET_REQ = "get_req"
GET_RESP = "get_resp"
ATTACH_REQ = "attach_req"
ATTACH_RESP = "attach_resp"
RELEASE_REQ = "release_req"
RELEASE_RESP = "release_resp"

#: Kinds the name server re-addresses to a segid's owner enclave.
SEGID_ADDRESSED = {GET_REQ, ATTACH_REQ, RELEASE_REQ, NOTIFY_SUBSCRIBE, SIGNAL_REQ}

#: Kinds with no response at all.
ONE_WAY = {SEGID_NOTIFY, ENCLAVE_HEARTBEAT}

#: Response kind for each request kind.
RESPONSE_KIND = {
    PING_NS_PATH: PING_NS_PATH_ACK,
    ALLOC_ENCLAVE_ID: ENCLAVE_ID_ASSIGNED,
    ENCLAVE_DEPART: ENCLAVE_DEPART_ACK,
    ALLOC_SEGID: SEGID_ASSIGNED,
    REMOVE_SEGID: REMOVE_SEGID_ACK,
    LOOKUP_NAME: LOOKUP_NAME_RESP,
    LIST_NAMES: LIST_NAMES_RESP,
    GET_REQ: GET_RESP,
    ATTACH_REQ: ATTACH_RESP,
    RELEASE_REQ: RELEASE_RESP,
    NOTIFY_SUBSCRIBE: NOTIFY_SUBSCRIBE_ACK,
    SIGNAL_REQ: SIGNAL_ACK,
}

ALL_KINDS = set(RESPONSE_KIND) | set(RESPONSE_KIND.values()) | ONE_WAY


def make_command(kind: str, src: Optional[int], dst: Optional[int],
                 pfns: Optional[np.ndarray] = None, **fields) -> KernelMessage:
    """Build a request/one-way command with the routing envelope."""
    if kind not in ALL_KINDS:
        raise ValueError(f"unknown command kind {kind!r}")
    payload = {"src": src, "dst": dst}
    payload.update(fields)
    return KernelMessage(kind=kind, payload=payload, pfns=pfns)


def make_response(request: KernelMessage, src: Optional[int],
                  pfns: Optional[np.ndarray] = None, **fields) -> KernelMessage:
    """Build the response for ``request``, addressed back to its sender."""
    kind = RESPONSE_KIND.get(request.kind)
    if kind is None:
        raise ValueError(f"{request.kind!r} takes no response")
    payload = {
        "src": src,
        "dst": request.payload["src"],
        "reply_to": request.payload.get("req_id"),
    }
    payload.update(fields)
    return KernelMessage(kind=kind, payload=payload, pfns=pfns)


def is_response(msg: KernelMessage) -> bool:
    """True when the message is a response (carries ``reply_to``)."""
    return "reply_to" in msg.payload
