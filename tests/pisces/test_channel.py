"""Unit tests for the Pisces IPI channel: core-0 rule, chunking, penalty."""

import numpy as np
import pytest

from repro.enclave import Enclave, EnclaveSystem, KernelMessage
from repro.hw import NodeHardware, R420_SPEC
from repro.hw.costs import CostModel, GB
from repro.pisces import PiscesChannel, PiscesManager
from repro.sim import Engine


def build(num_cokernels=1, ipi_target_policy="core0"):
    eng = Engine()
    node = NodeHardware(eng, R420_SPEC)
    pisces = PiscesManager(node)
    linux = pisces.boot_linux(core_ids=range(0, 8), mem_bytes=8 * GB)
    kittens = [
        pisces.boot_cokernel(core_ids=[12 + i], mem_bytes=1 * GB, zone_id=1,
                             ipi_target_policy=ipi_target_policy)
        for i in range(num_cokernels)
    ]
    return eng, node, pisces, linux, kittens


def test_bad_policy_rejected():
    eng, node, pisces, linux, kittens = build()
    with pytest.raises(ValueError):
        PiscesChannel(linux, kittens[0], ipi_target_policy="magic")


def test_linux_side_ipis_target_core0():
    _eng, _node, pisces, _linux, _kittens = build(num_cokernels=3)
    for channel in pisces.channels:
        assert channel.linux_handling_core_id == 0


def test_distributed_policy_spreads_targets():
    _eng, _node, pisces, _linux, _kittens = build(
        num_cokernels=4, ipi_target_policy="distributed"
    )
    targets = {ch.linux_handling_core_id for ch in pisces.channels}
    assert len(targets) > 1


def test_message_delivery_and_receiver():
    eng, _node, pisces, linux, kittens = build()
    channel = pisces.channels[0]
    got = []
    kittens[0].set_receiver(lambda msg, ch: got.append((msg.kind, ch)))
    linux.set_receiver(lambda msg, ch: got.append((msg.kind, ch)))

    def send():
        yield from channel.send(linux, KernelMessage("ping", {"x": 1}))
        yield from channel.send(kittens[0], KernelMessage("pong"))

    eng.run_process(send())
    assert [k for k, _c in got] == ["ping", "pong"]
    assert all(c is channel for _k, c in got)
    assert channel.messages_sent == 2


def test_pfn_list_chunks_cause_core0_occupancy():
    eng, node, pisces, linux, kittens = build()
    channel = pisces.channels[0]
    kittens[0].set_receiver(lambda msg, ch: None)
    linux.set_receiver(lambda msg, ch: None)
    costs = node.costs
    pfns = np.arange(100_000, dtype=np.int64)  # 800KB list -> several chunks
    chunks = costs.pfn_list_chunks(len(pfns))
    assert chunks > 1

    def send():
        yield from channel.send(kittens[0], KernelMessage("attach_resp", pfns=pfns))

    eng.run_process(send())
    core0 = node.core(0)
    irq_steals = [d for _s, d, t in core0.steal_log if t.startswith("irq:")]
    assert len(irq_steals) == chunks
    assert all(d == costs.ipi_handler_core0_ns for d in irq_steals)
    assert channel.pfns_carried == len(pfns)


def test_multi_enclave_penalty_applies_only_with_system():
    """Without a system registration the penalty is off; with >=2
    co-kernels registered it slows per-page marshalling."""
    def transfer_time(register_two):
        eng, node, pisces, linux, kittens = build(num_cokernels=2)
        if register_two:
            system = EnclaveSystem(node)
            system.add_all(pisces.all_enclaves)
        channel = pisces.channels[0]
        kittens[0].set_receiver(lambda msg, ch: None)
        linux.set_receiver(lambda msg, ch: None)
        pfns = np.arange(50_000, dtype=np.int64)

        def send():
            t0 = eng.now
            yield from channel.send(kittens[0], KernelMessage("r", pfns=pfns))
            return eng.now - t0

        return eng.run_process(send())

    base = transfer_time(register_two=False)
    slowed = transfer_time(register_two=True)
    assert slowed > base


def test_multi_enclave_penalty_only_into_linux():
    """The penalty models contended Linux-side core-0 dispatch, so it must
    apply only to PFN lists flowing *into* the management enclave. Traffic
    out to a co-kernel is handled on the co-kernel's own service core and
    costs the same whether or not other enclaves are registered."""
    def transfer_time(register_two, src_is_linux):
        eng, node, pisces, linux, kittens = build(num_cokernels=2)
        if register_two:
            system = EnclaveSystem(node)
            system.add_all(pisces.all_enclaves)
        channel = pisces.channels[0]
        kittens[0].set_receiver(lambda msg, ch: None)
        linux.set_receiver(lambda msg, ch: None)
        pfns = np.arange(50_000, dtype=np.int64)
        src = linux if src_is_linux else kittens[0]

        def send():
            t0 = eng.now
            yield from channel.send(src, KernelMessage("r", pfns=pfns))
            return eng.now - t0

        return eng.run_process(send())

    # kitten -> linux: registering a second co-kernel slows marshalling
    assert transfer_time(True, src_is_linux=False) > transfer_time(
        False, src_is_linux=False
    )
    # linux -> kitten: cost is identical to the unregistered baseline
    assert transfer_time(True, src_is_linux=True) == transfer_time(
        False, src_is_linux=True
    )


def test_messages_without_pfns_send_single_ipi():
    eng, node, pisces, linux, kittens = build()
    channel = pisces.channels[0]
    kittens[0].set_receiver(lambda msg, ch: None)
    linux.set_receiver(lambda msg, ch: None)

    def send():
        yield from channel.send(kittens[0], KernelMessage("hello"))

    eng.run_process(send())
    assert node.intc.delivered == 1


def test_partition_double_claims_rejected():
    eng, node, pisces, linux, kittens = build()
    with pytest.raises(Exception, match="already owned"):
        pisces.boot_cokernel(core_ids=[12], mem_bytes=1 * GB, zone_id=1)
    with pytest.raises(Exception, match="Linux management enclave already"):
        pisces.boot_linux(core_ids=[20], mem_bytes=1 * GB)


def test_cokernel_requires_linux_first():
    eng = Engine()
    node = NodeHardware(eng, R420_SPEC)
    pisces = PiscesManager(node)
    with pytest.raises(Exception, match="boot the Linux"):
        pisces.boot_cokernel(core_ids=[1], mem_bytes=1 * GB)
