"""Unit tests for the shared kernel machinery (KernelBase)."""

import numpy as np
import pytest

from repro.kernels.base import KernelError
from repro.kernels.pagetable import PAGE_SIZE


def test_create_process_assigns_pids_and_cores(rig):
    _eng, _node, linux, _kitten = rig
    p1 = linux.create_process("a")
    p2 = linux.create_process("b", core_id=linux.cores[1].core_id)
    assert p1.pid != p2.pid
    assert p1.core_id == linux.cores[0].core_id
    assert p2.core_id == linux.cores[1].core_id


def test_create_process_foreign_core_rejected(rig):
    _eng, _node, linux, kitten = rig
    with pytest.raises(KernelError):
        linux.create_process("x", core_id=kitten.cores[0].core_id)


def test_kernel_owns_its_cores(rig):
    _eng, _node, linux, kitten = rig
    assert all(c.owner is linux for c in linux.cores)
    assert all(c.owner is kitten for c in kitten.cores)


def test_foreign_process_rejected(rig):
    eng, _node, linux, kitten = rig
    kp = kitten.create_process("k")

    def proc():
        yield from linux.walk_for_export(kp, 0x0, 1)

    with pytest.raises(KernelError):
        eng.run_process(proc())


def test_alloc_free_pfns_roundtrip(rig):
    _eng, _node, linux, _kitten = rig
    before = linux.allocator.free_frames
    pfns = linux.alloc_pfns(100)
    assert len(pfns) == 100
    assert linux.allocator.free_frames == before - 100
    linux.free_pfns(pfns)
    assert linux.allocator.free_frames == before


def test_alloc_scattered_fragmented(rig):
    _eng, _node, linux, _kitten = rig
    pfns = linux.alloc_pfns(10, scattered=True)
    linux.free_pfns(pfns)


def test_owns_pfn(rig):
    _eng, _node, linux, kitten = rig
    lp = linux.alloc_pfns(1)
    kp = kitten.alloc_pfns(1)
    assert linux.owns_pfn(int(lp[0]))
    assert not linux.owns_pfn(int(kp[0]))
    assert kitten.owns_pfn(int(kp[0]))


def test_walk_for_export_costs_time_and_logs_steal(rig):
    eng, _node, _linux, kitten = rig
    proc = kitten.create_process("exp")
    heap = kitten.heap_region(proc)

    def run():
        t0 = eng.now
        pfns = yield from kitten.walk_for_export(proc, heap.start, heap.npages)
        return pfns, eng.now - t0

    pfns, elapsed = eng.run_process(run())
    assert len(pfns) == heap.npages
    assert elapsed == heap.npages * kitten.costs.walk_per_page_ns
    steal = kitten.service_core.steal_log
    assert len(steal) == 1 and steal[0][2].startswith("xemem-walk")


def test_map_remote_pfns_installs_translations(rig):
    eng, _node, linux, kitten = rig
    kp = kitten.create_process("exp")
    lp = linux.create_process("att")
    heap = kitten.heap_region(kp)

    def run():
        pfns = yield from kitten.walk_for_export(kp, heap.start, 16)
        region = yield from linux.map_remote_pfns(lp, pfns, "att")
        return pfns, region

    pfns, region = eng.run_process(run())
    got = lp.aspace.table.translate_range(region.start, 16)
    assert (got == pfns).all()


def test_unmap_attachment_returns_frames(rig):
    eng, _node, linux, kitten = rig
    kp = kitten.create_process("exp")
    lp = linux.create_process("att")
    heap = kitten.heap_region(kp)

    def run():
        pfns = yield from kitten.walk_for_export(kp, heap.start, 8)
        region = yield from linux.map_remote_pfns(lp, pfns, "att")
        got = yield from linux.unmap_attachment(lp, region)
        return pfns, got

    pfns, got = eng.run_process(run())
    assert (np.sort(got) == np.sort(pfns)).all()
    assert lp.aspace.find_region(0x7F00_0000_0000) is None


def test_stolen_ns_merges_noise_and_steal_log(rig):
    _eng, _node, _linux, kitten = rig
    from repro.kernels.noise import PeriodicNoise

    cid = kitten.cores[0].core_id
    kitten.noise_sources[cid] = [
        PeriodicNoise(1000, 10, tag="t", seed=1)
    ]
    kitten.cores[0].log_steal(500, 50, "svc")
    got = kitten.stolen_ns(cid, 0, 10_000)
    analytic = sum(d for _s, d in kitten.noise_sources[cid][0].events_in(0, 10_000))
    assert got == analytic + 50
