"""Tests for process teardown and frame reclamation across kernels."""

import numpy as np
import pytest

from repro.kernels.base import KernelError
from repro.kernels.pagetable import PAGE_SIZE


def test_destroy_kitten_process_frees_static_frames(rig):
    _eng, _node, _linux, kitten = rig
    used_before = kitten.allocator.used_frames
    proc = kitten.create_process("app")
    assert kitten.allocator.used_frames > used_before
    kitten.destroy_process(proc)
    assert kitten.allocator.used_frames == used_before
    assert proc.pid not in kitten.processes
    with pytest.raises(KernelError):
        kitten.destroy_process(proc)


def test_destroy_linux_process_with_partial_lazy_region(rig):
    eng, _node, linux, _kitten = rig
    used_before = linux.allocator.used_frames
    proc = linux.create_process("app")

    def run():
        region = yield from linux.mmap_anonymous(proc, 32 * PAGE_SIZE)
        # fault in only a few pages
        yield from linux.handle_fault(proc, region.start)
        yield from linux.handle_fault(proc, region.start + 5 * PAGE_SIZE)
        return region

    eng.run_process(run())
    assert linux.allocator.used_frames == used_before + 2
    linux.destroy_process(proc)
    assert linux.allocator.used_frames == used_before


def test_destroy_process_with_dynamic_kitten_mapping(rig):
    """A Kitten process holding a remote attachment: teardown unmaps it
    but the remote frames stay allocated to their exporter."""
    eng, _node, linux, kitten = rig
    lp = linux.create_process("exp")
    kp = kitten.create_process("att")

    def run():
        region = yield from linux.mmap_anonymous(lp, 16 * PAGE_SIZE)
        pfns = yield from linux.walk_for_export(lp, region.start, 16)
        att = yield from kitten.map_remote_pfns(kp, pfns)
        return att

    eng.run_process(run())
    linux_used = linux.allocator.used_frames
    kitten.destroy_process(kp)
    assert linux.allocator.used_frames == linux_used  # exporter untouched
    assert kp.pid not in kitten.processes


def test_munmap_rejects_borrowed_frames(rig):
    """munmap is for anonymous memory; attachments must detach."""
    eng, _node, linux, _kitten = rig
    exporter = linux.create_process("exp")
    attacher = linux.create_process("att")

    def run():
        region = yield from linux.mmap_anonymous(exporter, 8 * PAGE_SIZE)
        pfns = yield from linux.walk_for_export(exporter, region.start, 8)
        att_region = yield from linux.attach_local_lazy(attacher, pfns)
        with pytest.raises(KernelError, match="borrowed"):
            yield from linux.munmap(attacher, att_region)
        return True

    assert eng.run_process(run())


def test_munmap_partial_population_frees_only_present(rig):
    eng, _node, linux, _kitten = rig
    proc = linux.create_process("app")
    used_before = linux.allocator.used_frames

    def run():
        region = yield from linux.mmap_anonymous(proc, 16 * PAGE_SIZE)
        yield from linux.handle_fault(proc, region.start)
        freed = yield from linux.munmap(proc, region)
        return freed

    assert eng.run_process(run()) == 1
    assert linux.allocator.used_frames == used_before
