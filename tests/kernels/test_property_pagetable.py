"""Property-based tests: PageTable behaves like a dict of page mappings."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels.pagetable import (
    PAGE_SIZE,
    PageFault,
    PageTable,
    PTE_PRESENT,
    PTE_USER,
    PTE_WRITABLE,
)

RW = PTE_PRESENT | PTE_WRITABLE | PTE_USER

pages = st.integers(0, 1 << 20)  # page numbers within a modest window


@settings(max_examples=50, deadline=None)
@given(st.dictionaries(pages, st.integers(0, 1 << 30), min_size=1, max_size=150))
def test_single_page_ops_match_dict(mapping):
    pt = PageTable()
    for page, pfn in mapping.items():
        pt.map_page(page * PAGE_SIZE, pfn, RW)
    assert pt.present_pages == len(mapping)
    for page, pfn in mapping.items():
        assert pt.translate(page * PAGE_SIZE) == (pfn, RW)
    # unmap half, rest must survive
    doomed = list(mapping)[::2]
    for page in doomed:
        assert pt.unmap_page(page * PAGE_SIZE) == mapping[page]
    for page in doomed:
        with pytest.raises(PageFault):
            pt.translate(page * PAGE_SIZE)
    for page in sorted(set(mapping) - set(doomed)):
        assert pt.translate(page * PAGE_SIZE)[0] == mapping[page]


@settings(max_examples=50, deadline=None)
@given(
    st.integers(0, 1 << 18),          # base page
    st.integers(1, 2000),             # npages (crosses leaf tables)
    st.integers(0, 1 << 28),          # first pfn
)
def test_range_ops_roundtrip(base_page, npages, first_pfn):
    pt = PageTable()
    vaddr = base_page * PAGE_SIZE
    pfns = np.arange(first_pfn, first_pfn + npages, dtype=np.int64)
    pt.map_range(vaddr, pfns, RW)
    assert pt.present_pages == npages
    assert (pt.translate_range(vaddr, npages) == pfns).all()
    got = pt.unmap_range(vaddr, npages)
    assert (got == pfns).all()
    assert pt.present_pages == 0


@settings(max_examples=30, deadline=None)
@given(st.integers(1, 600), st.integers(1, 600))
def test_adjacent_ranges_do_not_interfere(n1, n2):
    pt = PageTable()
    a = np.arange(n1, dtype=np.int64) + 10
    b = np.arange(n2, dtype=np.int64) + 10_000
    pt.map_range(0, a)
    pt.map_range(n1 * PAGE_SIZE, b)
    assert (pt.translate_range(0, n1) == a).all()
    assert (pt.translate_range(n1 * PAGE_SIZE, n2) == b).all()
    pt.unmap_range(0, n1)
    assert (pt.translate_range(n1 * PAGE_SIZE, n2) == b).all()
