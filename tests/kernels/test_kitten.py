"""Unit tests for the Kitten LWK model: static maps, SMARTMAP, heap expansion."""

import numpy as np
import pytest

from repro.kernels.addrspace import RegionKind
from repro.kernels.kitten import (
    DEFAULT_HEAP_PAGES,
    HEAP_BASE,
    STACK_PAGES,
    STACK_TOP,
    TEXT_PAGES,
)
from repro.kernels.pagetable import PAGE_SIZE, PageFault


def test_process_creation_maps_everything_statically(rig):
    _eng, _node, _linux, kitten = rig
    proc = kitten.create_process("app")
    names = {r.name for r in proc.aspace.regions}
    assert names == {"text", "heap", "stack"}
    for region in proc.aspace.regions:
        assert region.kind is RegionKind.STATIC
        assert region.populated == region.npages
    # no faults anywhere in the static regions
    heap = kitten.heap_region(proc)
    assert len(proc.aspace.table.translate_range(heap.start, heap.npages)) == heap.npages


def test_static_layout_addresses(rig):
    _eng, _node, _linux, kitten = rig
    proc = kitten.create_process("app")
    heap = kitten.heap_region(proc)
    assert heap.start == HEAP_BASE
    assert heap.npages == DEFAULT_HEAP_PAGES
    stack = next(r for r in proc.aspace.regions if r.name == "stack")
    assert stack.end == STACK_TOP


def test_touch_pages_never_faults(rig):
    eng, _node, _linux, kitten = rig
    proc = kitten.create_process("app")
    heap = kitten.heap_region(proc)

    def run():
        t0 = eng.now
        yield from kitten.touch_pages(proc, heap.start, heap.npages)
        return eng.now - t0

    assert eng.run_process(run()) == heap.npages * kitten.costs.page_touch_ns


def test_smartmap_attach_translates_donor_heap(rig):
    _eng, _node, _linux, kitten = rig
    donor = kitten.create_process("donor")
    attacher = kitten.create_process("att")
    base = kitten.smartmap_attach(attacher, donor)
    heap = kitten.heap_region(donor)
    donor_pfns = donor.aspace.table.translate_range(heap.start, 4)
    via_smartmap = attacher.aspace.table.translate_range(base + heap.start, 4)
    assert (donor_pfns == via_smartmap).all()
    assert kitten.smartmap_address(donor, heap.start) == base + heap.start


def test_smartmap_detach(rig):
    _eng, _node, _linux, kitten = rig
    donor = kitten.create_process("donor")
    attacher = kitten.create_process("att")
    base = kitten.smartmap_attach(attacher, donor)
    kitten.smartmap_detach(attacher, donor)
    with pytest.raises(PageFault):
        attacher.aspace.table.translate(base + HEAP_BASE)


def test_smartmap_both_directions(rig):
    _eng, _node, _linux, kitten = rig
    a = kitten.create_process("a")
    b = kitten.create_process("b")
    kitten.smartmap_attach(a, b)
    kitten.smartmap_attach(b, a)
    assert a.aspace.table.translate(kitten.smartmap_address(b, HEAP_BASE))
    assert b.aspace.table.translate(kitten.smartmap_address(a, HEAP_BASE))


def test_expand_heap_places_above_heap_and_advances(rig):
    _eng, _node, _linux, kitten = rig
    proc = kitten.create_process("app")
    r1 = kitten.expand_heap(proc, 16, "one")
    r2 = kitten.expand_heap(proc, 16, "two")
    heap = kitten.heap_region(proc)
    assert r1.start == heap.end
    assert r2.start == r1.end
    assert r1.kind is RegionKind.EAGER


def test_expand_heap_collision_with_stack(rig):
    _eng, _node, _linux, kitten = rig
    proc = kitten.create_process("app")
    span = (STACK_TOP - STACK_PAGES * PAGE_SIZE - HEAP_BASE) // PAGE_SIZE
    with pytest.raises(MemoryError):
        kitten.expand_heap(proc, span)


def test_map_remote_pfns_uses_dynamic_region(rig):
    eng, _node, linux, kitten = rig
    lp = linux.create_process("exp")
    kp = kitten.create_process("att")

    def run():
        region = yield from linux.mmap_anonymous(lp, 32 * PAGE_SIZE)
        pfns = yield from linux.walk_for_export(lp, region.start, 32)
        att = yield from kitten.map_remote_pfns(kp, pfns, "remote")
        return pfns, att

    pfns, att = eng.run_process(run())
    heap = kitten.heap_region(kp)
    assert att.start == heap.end  # dynamic heap expansion placement
    got = kp.aspace.table.translate_range(att.start, 32)
    assert (got == pfns).all()


def test_dynamic_mapping_coexists_with_smartmap(rig):
    """The paper's §4.3 requirement: heap expansion must not break SMARTMAP."""
    eng, _node, linux, kitten = rig
    lp = linux.create_process("exp")
    donor = kitten.create_process("donor")
    attacher = kitten.create_process("att")
    base = kitten.smartmap_attach(attacher, donor)

    def run():
        region = yield from linux.mmap_anonymous(lp, 8 * PAGE_SIZE)
        pfns = yield from linux.walk_for_export(lp, region.start, 8)
        att = yield from kitten.map_remote_pfns(attacher, pfns, "remote")
        return att

    att = eng.run_process(run())
    # SMARTMAP window still live
    assert attacher.aspace.table.translate(base + HEAP_BASE)
    # and the remote mapping translates
    assert attacher.aspace.table.translate(att.start)


def test_pid_collision_exhaustion_guard(rig):
    _eng, _node, _linux, kitten = rig
    with pytest.raises(Exception):
        kitten.smartmap_slot(400)
