"""Unit tests for the 4-level page table."""

import numpy as np
import pytest

from repro.kernels.pagetable import (
    PAGE_SIZE,
    PML4_SLOT_SPAN,
    PageFault,
    PageTable,
    PTE_PINNED,
    PTE_PRESENT,
    PTE_USER,
    PTE_WRITABLE,
    pack_pte,
    pte_flags,
    pte_pfn,
)

RW = PTE_PRESENT | PTE_WRITABLE | PTE_USER


def test_pack_unpack_pte():
    pte = pack_pte(12345, RW)
    assert pte_pfn(pte) == 12345
    assert pte_flags(pte) == RW


def test_pack_validation():
    with pytest.raises(ValueError):
        pack_pte(-1, RW)
    with pytest.raises(ValueError):
        pack_pte(0, 1 << 12)


def test_map_translate_single_page():
    pt = PageTable()
    pt.map_page(0x4000, 77, RW)
    assert pt.translate(0x4000) == (77, RW)
    # interior addresses translate too
    assert pt.translate(0x4FFF)[0] == 77
    assert pt.present_pages == 1


def test_translate_miss_faults():
    pt = PageTable()
    with pytest.raises(PageFault):
        pt.translate(0x4000)


def test_write_to_readonly_faults():
    pt = PageTable()
    pt.map_page(0x4000, 1, PTE_PRESENT | PTE_USER)
    assert pt.translate(0x4000)[0] == 1
    with pytest.raises(PageFault):
        pt.translate(0x4000, write=True)


def test_double_map_rejected():
    pt = PageTable()
    pt.map_page(0x4000, 1)
    with pytest.raises(ValueError, match="already mapped"):
        pt.map_page(0x4000, 2)


def test_unmap_returns_pfn():
    pt = PageTable()
    pt.map_page(0x4000, 42)
    assert pt.unmap_page(0x4000) == 42
    assert pt.present_pages == 0
    with pytest.raises(PageFault):
        pt.translate(0x4000)


def test_unmap_missing_faults():
    pt = PageTable()
    with pytest.raises(PageFault):
        pt.unmap_page(0x4000)


def test_unaligned_vaddr_rejected():
    pt = PageTable()
    with pytest.raises(ValueError):
        pt.map_page(0x4001, 1)


def test_vaddr_beyond_user_half_rejected():
    pt = PageTable()
    with pytest.raises(ValueError):
        pt.map_page(1 << 47, 1)


def test_map_range_roundtrip_across_leaf_tables():
    pt = PageTable()
    npages = 1500  # spans 3 leaf tables
    pfns = np.arange(10_000, 10_000 + npages, dtype=np.int64)
    base = 0x10_0000
    pt.map_range(base, pfns, RW)
    assert pt.present_pages == npages
    got = pt.translate_range(base, npages)
    assert (got == pfns).all()


def test_map_range_collision_is_atomic():
    pt = PageTable()
    pt.map_page(0x10_0000 + 700 * PAGE_SIZE, 5)
    pfns = np.arange(1000, dtype=np.int64)
    with pytest.raises(ValueError, match="already mapped"):
        pt.map_range(0x10_0000, pfns)
    # nothing else must have been installed
    assert pt.present_pages == 1


def test_unmap_range_returns_pfns_and_is_atomic():
    pt = PageTable()
    pfns = np.arange(600, dtype=np.int64) + 50
    pt.map_range(0x20_0000, pfns)
    got = pt.unmap_range(0x20_0000, 600)
    assert (got == pfns).all()
    assert pt.present_pages == 0
    # atomicity: partial holes abort before modifying anything
    pt.map_range(0x20_0000, pfns[:100])
    with pytest.raises(PageFault):
        pt.unmap_range(0x20_0000, 200)
    assert pt.present_pages == 100


def test_translate_range_reports_first_hole():
    pt = PageTable()
    pt.map_range(0x0, np.arange(10, dtype=np.int64))
    pt.unmap_page(3 * PAGE_SIZE)
    with pytest.raises(PageFault) as exc:
        pt.translate_range(0x0, 10)
    assert exc.value.vaddr == 3 * PAGE_SIZE


def test_set_flags_range_pinning():
    pt = PageTable()
    pt.map_range(0x0, np.arange(20, dtype=np.int64))
    assert not pt.range_flags_all(0x0, 20, PTE_PINNED)
    pt.set_flags_range(0x0, 20, set_mask=PTE_PINNED)
    assert pt.range_flags_all(0x0, 20, PTE_PINNED)
    pt.set_flags_range(0x0, 20, clear_mask=PTE_PINNED)
    assert not pt.range_flags_all(0x0, 20, PTE_PINNED)
    assert pt.present_pages == 20  # flags untouched presence


def test_cannot_clear_present_via_flags():
    pt = PageTable()
    pt.map_page(0x0, 1)
    with pytest.raises(ValueError):
        pt.set_flags_range(0x0, 1, clear_mask=PTE_PRESENT)


def test_mapped_vaddrs_enumeration():
    pt = PageTable()
    pt.map_page(0x4000, 1)
    pt.map_page(0x200000, 2)
    assert pt.mapped_vaddrs() == [0x4000, 0x200000]


# -- SMARTMAP slot sharing ------------------------------------------------------


def test_smartmap_slot_sharing_reads_donor_slot0():
    donor = PageTable()
    donor.map_page(0x4000, 99, RW)
    borrower = PageTable()
    borrower.share_pml4_slot(3, donor)
    # borrower sees donor's 0x4000 at slot 3's span + 0x4000
    assert borrower.translate(3 * PML4_SLOT_SPAN + 0x4000) == (99, RW)


def test_smartmap_reflects_donor_updates_live():
    donor = PageTable()
    borrower = PageTable()
    borrower.share_pml4_slot(1, donor)
    donor.map_page(0x8000, 7)
    assert borrower.translate(PML4_SLOT_SPAN + 0x8000)[0] == 7


def test_smartmap_slot_is_readonly_for_borrower():
    donor = PageTable()
    borrower = PageTable()
    borrower.share_pml4_slot(1, donor)
    with pytest.raises(ValueError, match="borrowed"):
        borrower.map_page(PML4_SLOT_SPAN + 0x4000, 5)
    with pytest.raises(ValueError, match="borrowed"):
        borrower.unmap_page(PML4_SLOT_SPAN + 0x4000)


def test_smartmap_unshare():
    donor = PageTable()
    donor.map_page(0x4000, 9)
    borrower = PageTable()
    borrower.share_pml4_slot(1, donor)
    borrower.unshare_pml4_slot(1)
    with pytest.raises(PageFault):
        borrower.translate(PML4_SLOT_SPAN + 0x4000)
    with pytest.raises(ValueError):
        borrower.unshare_pml4_slot(1)


def test_smartmap_slot_conflicts():
    donor = PageTable()
    borrower = PageTable()
    borrower.map_page(2 * PML4_SLOT_SPAN, 1)  # slot 2 in use by own mapping
    with pytest.raises(ValueError):
        borrower.share_pml4_slot(2, donor)
    with pytest.raises(ValueError):
        borrower.share_pml4_slot(1, borrower)  # self-share


def test_smartmap_does_not_affect_donor_presence_count():
    donor = PageTable()
    donor.map_page(0x0, 1)
    borrower = PageTable()
    borrower.share_pml4_slot(1, donor)
    assert borrower.present_pages == 0
    assert donor.present_pages == 1
