"""Shared fixtures: a node with one Linux and one Kitten kernel on it."""

import pytest

from repro.hw import NodeHardware, R420_SPEC
from repro.hw.memory import FrameAllocator
from repro.kernels import KittenKernel, LinuxKernel
from repro.sim import Engine


def carve_allocator(node: NodeHardware, zone_id: int, nframes: int) -> FrameAllocator:
    """Give a kernel a private window of a NUMA zone's frames."""
    rng = node.memory.zone(zone_id).allocator.alloc(nframes)
    return FrameAllocator(rng.start_pfn, rng.nframes)


@pytest.fixture
def rig():
    """(engine, node, linux, kitten) with partitioned cores and memory."""
    eng = Engine()
    node = NodeHardware(eng, R420_SPEC)
    linux = LinuxKernel(
        eng, node, node.cores[:4], carve_allocator(node, 0, 65536), name="linux"
    )
    kitten = KittenKernel(
        eng, node, node.cores[4:6], carve_allocator(node, 0, 65536), name="kitten"
    )
    return eng, node, linux, kitten
