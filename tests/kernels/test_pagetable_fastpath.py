"""Edge cases for the page table's fast paths: zero-page range ops, the
generation-keyed walk cache, and the sparse/vectorized helpers."""

import numpy as np
import pytest

from repro import obs
from repro.kernels.pagetable import (
    PAGE_SIZE,
    PML4_SLOT_SPAN,
    WALK_CACHE_SLOTS,
    PageFault,
    PageTable,
    PTE_PINNED,
    PTE_PRESENT,
    PTE_USER,
    PTE_WRITABLE,
)
from repro.sim import fastpath

RW = PTE_PRESENT | PTE_WRITABLE | PTE_USER


def _mapped(npages=8, base=0x40_0000):
    pt = PageTable()
    pt.map_range(base, np.arange(100, 100 + npages, dtype=np.int64), RW)
    return pt, base


# -- zero-page ranges are well-defined no-ops -----------------------------------------


@pytest.mark.parametrize("fast", [True, False])
def test_zero_page_range_ops_are_noops(fast):
    ctx = fastpath.enabled() if fast else fastpath.disabled()
    with ctx:
        pt, base = _mapped()
        gen = pt.generation
        pt.map_range(base + 0x100000, np.empty(0, dtype=np.int64), RW)
        out = pt.unmap_range(base, 0)
        assert out.shape == (0,)
        walked = pt.translate_range(base, 0)
        assert walked.shape == (0,)
        assert pt.range_flags_all(base, 0, PTE_WRITABLE)
        pt.set_flags_range(base, 0, set_mask=PTE_PINNED)
        # nothing changed: not the mapping count, not the generation
        assert pt.present_pages == 8
        assert pt.generation == gen
        # ...even on a completely unmapped address
        assert pt.translate_range(0x7000_0000, 0).shape == (0,)


@pytest.mark.parametrize("fast", [True, False])
def test_negative_page_count_rejected(fast):
    ctx = fastpath.enabled() if fast else fastpath.disabled()
    with ctx:
        pt, base = _mapped()
        with pytest.raises(ValueError):
            pt.translate_range(base, -1)
        with pytest.raises(ValueError):
            pt.unmap_range(base, -3)


# -- walk cache -----------------------------------------------------------------------


def test_walk_cache_hits_on_repeat_walks():
    with fastpath.enabled(), obs.observing(metrics=True) as ctx:
        pt, base = _mapped(16)
        first = pt.translate_range(base, 16)
        second = pt.translate_range(base, 16)
    np.testing.assert_array_equal(first, second)
    assert ctx.metrics.snapshot()["fastpath.walkcache.hits"] == 1


def test_walk_cache_invalidated_by_pfn_mutations():
    with fastpath.enabled(), obs.observing(metrics=True) as ctx:
        pt, base = _mapped(16)
        pt.translate_range(base, 16)          # prime
        pt.map_page(base + 16 * PAGE_SIZE, 999, RW)
        after_map = pt.translate_range(base, 16)     # stale -> rewalk
        pt.translate_range(base, 16)                  # fresh -> hit
        pt.unmap_page(base + 16 * PAGE_SIZE)
        after_unmap = pt.translate_range(base, 16)   # stale again
    np.testing.assert_array_equal(after_map, after_unmap)
    assert ctx.metrics.snapshot()["fastpath.walkcache.hits"] == 1


def test_walk_cache_survives_flag_only_mutations():
    """Pinning (set_flags*) must not evict — the recurring-attach case."""
    with fastpath.enabled(), obs.observing(metrics=True) as ctx:
        pt, base = _mapped(16)
        pt.translate_range(base, 16)
        pt.set_flags_range(base, 16, set_mask=PTE_PINNED)
        pt.set_flags(base, set_mask=0, clear_mask=PTE_PINNED)
        pt.translate_range(base, 16)
    assert ctx.metrics.snapshot()["fastpath.walkcache.hits"] == 1


def test_walk_cache_returns_private_copies():
    with fastpath.enabled():
        pt, base = _mapped(4)
        first = pt.translate_range(base, 4)
        first[:] = -1  # corrupting the caller's array must not poison the cache
        second = pt.translate_range(base, 4)
        np.testing.assert_array_equal(second, np.arange(100, 104))
        third = pt.translate_range(base, 4)
        assert third is not second


def test_walk_cache_eviction_is_bounded():
    with fastpath.enabled():
        pt = PageTable()
        n = WALK_CACHE_SLOTS + 4
        pt.map_range(0x40_0000, np.arange(1, 1 + n, dtype=np.int64), RW)
        for i in range(n):
            pt.translate_range(0x40_0000 + i * PAGE_SIZE, 1)
        assert len(pt._walk_cache) == WALK_CACHE_SLOTS


def test_walk_cache_bypasses_smartmap_slots():
    """Ranges through a borrowed PML4 slot can change under the donor's
    generation, so they must never be cached."""
    with fastpath.enabled(), obs.observing(metrics=True) as ctx:
        donor = PageTable()
        donor.map_range(0x40_0000, np.arange(500, 508, dtype=np.int64), RW)
        borrower = PageTable()
        borrower.share_pml4_slot(1, donor)
        alias = PML4_SLOT_SPAN + 0x40_0000
        first = borrower.translate_range(alias, 8)
        borrower.translate_range(alias, 8)
        # donor-side remap must be visible immediately through the alias
        donor.unmap_page(0x40_0000)
        donor.map_page(0x40_0000, 7777, RW)
        assert borrower.translate_range(alias, 8)[0] == 7777
    assert first[0] == 500
    assert "fastpath.walkcache.hits" not in ctx.metrics.snapshot()


# -- presence / flag masks ------------------------------------------------------------


@pytest.mark.parametrize("fast", [True, False])
def test_present_mask_never_faults(fast):
    ctx = fastpath.enabled() if fast else fastpath.disabled()
    with ctx:
        pt, base = _mapped(4)
        mask = pt.present_mask(base - 2 * PAGE_SIZE, 8)
        np.testing.assert_array_equal(
            mask, [False, False, True, True, True, True, False, False]
        )
        # a range entirely inside an absent leaf table
        assert not pt.present_mask(0x7000_0000, 3).any()
        assert pt.present_mask(base, 0).shape == (0,)


def test_flag_mask_requires_present_and_flags():
    pt = PageTable()
    pt.map_page(0x40_0000, 1, RW)
    pt.map_page(0x40_1000, 2, PTE_PRESENT | PTE_USER)  # read-only
    mask = pt.flag_mask(0x40_0000, 3, PTE_WRITABLE)
    np.testing.assert_array_equal(mask, [True, False, False])


# -- sparse mapping -------------------------------------------------------------------


def test_map_pages_sparse_across_leaves():
    pt = PageTable()
    # sorted-unique indices straddling a 512-entry leaf boundary
    idx = np.array([0, 3, 511, 513, 515], dtype=np.int64)
    pfns = np.array([9100, 9101, 9102, 9103, 9104], dtype=np.int64)
    pt.map_pages_sparse(0x40_0000, idx, pfns)
    assert pt.present_pages == 5
    for i, pfn in zip(idx, pfns):
        assert pt.translate(0x40_0000 + int(i) * PAGE_SIZE)[0] == pfn
    # the in-between holes are still holes
    with pytest.raises(PageFault):
        pt.translate(0x40_0000 + 2 * PAGE_SIZE)


def test_map_pages_sparse_collision_is_atomic():
    pt = PageTable()
    pt.map_page(0x40_0000 + 4 * PAGE_SIZE, 55, RW)
    gen = pt.generation
    with pytest.raises(ValueError, match="already mapped"):
        pt.map_pages_sparse(
            0x40_0000,
            np.array([1, 4, 7], dtype=np.int64),
            np.array([70, 71, 72], dtype=np.int64),
        )
    assert pt.present_pages == 1
    assert pt.generation == gen
    with pytest.raises(PageFault):
        pt.translate(0x40_0000 + PAGE_SIZE)  # index 1 was not installed


def test_map_pages_sparse_empty_is_noop():
    pt = PageTable()
    gen = pt.generation
    pt.map_pages_sparse(
        0x40_0000, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    )
    assert pt.present_pages == 0
    assert pt.generation == gen
