"""Unit tests for the analytic noise model."""

import pytest

from repro.hw.costs import CostModel
from repro.kernels.noise import (
    PeriodicNoise,
    attach_noise_profile,
    kitten_noise_profile,
    linux_noise_profile,
    splitmix64,
)


def test_splitmix64_deterministic_and_spread():
    a = splitmix64(1)
    assert a == splitmix64(1)
    assert splitmix64(2) != a
    # crude uniformity check over the top byte
    tops = {splitmix64(i) >> 56 for i in range(512)}
    assert len(tops) > 100


def test_periodic_noise_events_without_jitter():
    src = PeriodicNoise(1000, 10, tag="t")
    events = src.events_in(0, 5000)
    assert events == [(0, 10), (1000, 10), (2000, 10), (3000, 10), (4000, 10)]


def test_periodic_noise_window_edges():
    src = PeriodicNoise(1000, 10, tag="t")
    assert src.events_in(1000, 1001) == [(1000, 10)]
    assert src.events_in(1001, 2000) == []
    assert src.events_in(500, 400) == []


def test_periodic_noise_phase():
    src = PeriodicNoise(1000, 10, tag="t", phase_ns=300)
    assert src.events_in(0, 2000) == [(300, 10), (1300, 10)]


def test_stolen_in_clips_to_window():
    src = PeriodicNoise(1000, 100, tag="t")
    # event at t=1000 lasts to 1100; window [1050, 2000) overlaps 50ns
    # plus the event at t=2000 not started yet -> excluded
    assert src.stolen_in(1050, 2000) == 50
    # full window
    assert src.stolen_in(0, 3000) == 300


def test_stolen_in_counts_straddling_event():
    src = PeriodicNoise(1_000_000, 500_000, tag="t")
    # event at t=0 runs to 500k; window starting inside it must count the tail
    assert src.stolen_in(100_000, 200_000) == 100_000


def test_jitter_is_deterministic_and_bounded():
    a = PeriodicNoise(1000, 10, tag="t", seed=7, jitter_frac=0.3)
    b = PeriodicNoise(1000, 10, tag="t", seed=7, jitter_frac=0.3)
    ea, eb = a.events_in(0, 100_000), b.events_in(0, 100_000)
    assert ea == eb
    for (start, _d), k in zip(ea, range(len(ea))):
        assert abs(start - k * 1000) <= 300 + 1


def test_different_seeds_differ():
    a = PeriodicNoise(1000, 10, tag="t", seed=1, jitter_frac=0.3)
    b = PeriodicNoise(1000, 10, tag="t", seed=2, jitter_frac=0.3)
    assert a.events_in(0, 50_000) != b.events_in(0, 50_000)


def test_exponential_durations_have_requested_mean():
    src = PeriodicNoise(1000, 500, tag="t", seed=3, exp_duration=True)
    events = src.events_in(0, 20_000_000)
    durs = [d for _s, d in events]
    mean = sum(durs) / len(durs)
    assert 400 <= mean <= 600
    assert max(durs) > 1500  # heavy tail present


def test_validation():
    with pytest.raises(ValueError):
        PeriodicNoise(0, 10, tag="t")
    with pytest.raises(ValueError):
        PeriodicNoise(1000, 10, tag="t", jitter_frac=0.9)


def test_kitten_profile_is_quiet_linux_is_loud():
    costs = CostModel()
    second = 1_000_000_000
    kitten = kitten_noise_profile(costs, seed=1)
    linux = linux_noise_profile(costs, seed=1)
    k_stolen = sum(s.stolen_in(0, 10 * second) for s in kitten)
    l_stolen = sum(s.stolen_in(0, 10 * second) for s in linux)
    k_frac = k_stolen / (10 * second)
    l_frac = l_stolen / (10 * second)
    assert k_frac < 0.005  # Kitten steals well under half a percent
    assert l_frac > 3 * k_frac  # Linux is markedly noisier


def test_attach_noise_profile_covers_all_cores(rig):
    _eng, _node, linux, kitten = rig
    attach_noise_profile(linux, seed=5)
    attach_noise_profile(kitten, seed=5)
    assert set(linux.noise_sources) == {c.core_id for c in linux.cores}
    tags = {s.tag for s in kitten.noise_sources[kitten.cores[0].core_id]}
    assert tags == {"hw-baseline", "smi"}
    tags = {s.tag for s in linux.noise_sources[linux.cores[0].core_id]}
    assert "daemon" in tags and "tick" in tags
