"""Regression tests for the SMARTMAP write-through and map-leak fixes.

Three bugs are pinned down here, each under both fidelity stores:

* borrowed (SMARTMAP) slots were guarded only on ``unmap_page`` —
  ``set_flags``, ``set_flags_range``, and ``unmap_range`` could write
  through to the donor's tree, and a range straddling the borrowed-slot
  boundary could half-mutate it;
* ``map_pages_sparse`` silently corrupted presence accounting on
  unsorted or duplicate ``page_indices`` (the leaf-grouping fill
  collapses duplicates to one PTE);
* a failed all-or-nothing validation in ``map_range`` /
  ``map_pages_sparse`` leaked freshly created empty leaf tables, which
  spuriously claimed the PML4 slot and blocked a later
  ``share_pml4_slot``.
"""

import numpy as np
import pytest

from repro.kernels.pagetable import (
    PAGE_SIZE,
    PML4_SLOT_SPAN,
    PTE_PINNED,
    PTE_PRESENT,
    PTE_USER,
    PTE_WRITABLE,
    PageTable,
)
from repro.sim import fidelity

RW = PTE_PRESENT | PTE_WRITABLE | PTE_USER
SLOT = 3
BASE = SLOT * PML4_SLOT_SPAN


@pytest.fixture(params=["fast", "detailed"])
def fid(request):
    """Run each regression against both storage-fidelity twins."""
    with fidelity.configured(request.param):
        yield request.param


def _snapshot(table, npages=8):
    """Everything a donor-side mutation could have disturbed."""
    return (
        table.present_pfns().tolist(),
        table.mapped_vaddrs(),
        [table.translate(i * PAGE_SIZE)[1] for i in range(npages)],
        table.generation,
    )


def _borrowed_pair(npages=8):
    donor = PageTable()
    donor.map_range(0, np.arange(100, 100 + npages, dtype=np.int64), RW)
    borrower = PageTable()
    borrower.share_pml4_slot(SLOT, donor)
    return donor, borrower


# -- borrowed-slot write-through ----------------------------------------------


def test_set_flags_borrowed_rejected(fid):
    donor, borrower = _borrowed_pair()
    before = _snapshot(donor)
    with pytest.raises(ValueError, match="borrowed"):
        borrower.set_flags(BASE, set_mask=PTE_PINNED)
    assert _snapshot(donor) == before


def test_set_flags_range_borrowed_rejected(fid):
    donor, borrower = _borrowed_pair()
    before = _snapshot(donor)
    with pytest.raises(ValueError, match="borrowed"):
        borrower.set_flags_range(BASE, 8, set_mask=PTE_PINNED)
    assert _snapshot(donor) == before


def test_unmap_range_borrowed_rejected(fid):
    donor, borrower = _borrowed_pair()
    before = _snapshot(donor)
    with pytest.raises(ValueError, match="borrowed"):
        borrower.unmap_range(BASE, 8)
    assert _snapshot(donor) == before


def test_map_range_borrowed_rejected(fid):
    donor, borrower = _borrowed_pair()
    before = _snapshot(donor)
    with pytest.raises(ValueError, match="borrowed"):
        borrower.map_range(BASE + 64 * PAGE_SIZE, np.array([9], dtype=np.int64), RW)
    assert _snapshot(donor) == before


def test_straddling_range_cannot_half_mutate(fid):
    """A range entering the borrowed slot is rejected before ANY page —
    including the borrower-owned pages below the boundary — mutates."""
    donor, borrower = _borrowed_pair()
    edge = BASE - 4 * PAGE_SIZE  # last 4 pages of the borrower-owned slot 2
    borrower.map_range(edge, np.arange(50, 54, dtype=np.int64), RW)
    donor_before = _snapshot(donor)
    own_before = [borrower.translate(edge + i * PAGE_SIZE) for i in range(4)]
    with pytest.raises(ValueError, match="borrowed"):
        borrower.set_flags_range(edge, 8, set_mask=PTE_PINNED)
    with pytest.raises(ValueError, match="borrowed"):
        borrower.unmap_range(edge, 8)
    assert _snapshot(donor) == donor_before
    assert [borrower.translate(edge + i * PAGE_SIZE) for i in range(4)] == own_before


def test_straddling_sparse_map_rejected(fid):
    donor, borrower = _borrowed_pair()
    edge = BASE - 4 * PAGE_SIZE
    with pytest.raises(ValueError, match="borrowed"):
        borrower.map_pages_sparse(
            edge, np.array([0, 6], dtype=np.int64),
            np.array([60, 61], dtype=np.int64), RW,
        )
    assert borrower.present_pages == 0


# -- sparse-index validation --------------------------------------------------


@pytest.mark.parametrize(
    "indices", [[1, 1, 2], [2, 1, 3], [5, 0], [-1, 0]],
    ids=["duplicate", "unsorted", "descending", "negative"],
)
def test_bad_sparse_indices_rejected_before_mutation(fid, indices):
    pt = PageTable()
    idx = np.array(indices, dtype=np.int64)
    with pytest.raises(ValueError):
        pt.map_pages_sparse(BASE, idx, np.arange(len(idx), dtype=np.int64) + 10, RW)
    assert pt.present_pages == 0
    assert pt.generation == 0
    assert pt.mapped_vaddrs() == []


def test_good_sparse_indices_still_accepted(fid):
    pt = PageTable()
    idx = np.array([0, 2, 3, 700], dtype=np.int64)
    pt.map_pages_sparse(BASE, idx, idx + 10, RW)
    assert pt.present_pages == 4
    assert pt.translate(BASE + 700 * PAGE_SIZE)[0] == 710


# -- structural leak on rejected maps -----------------------------------------


def test_rejected_map_range_claims_no_pml4_slot(fid):
    pt = PageTable()
    edge = BASE - PAGE_SIZE  # last page of slot 2
    pt.map_page(edge, 7, RW)
    before = (pt.present_pfns().tolist(), pt.mapped_vaddrs(), pt.generation)
    with pytest.raises(ValueError, match="already mapped"):
        # straddles into slot 3; collides on its very first page
        pt.map_range(edge, np.arange(10, 14, dtype=np.int64), RW)
    assert (pt.present_pfns().tolist(), pt.mapped_vaddrs(), pt.generation) == before
    donor = PageTable()
    donor.map_page(0, 1, RW)
    pt.share_pml4_slot(SLOT, donor)  # the rejected map must not have claimed it


def test_rejected_sparse_map_claims_no_pml4_slot(fid):
    pt = PageTable()
    edge = BASE - PAGE_SIZE
    pt.map_page(edge, 7, RW)
    with pytest.raises(ValueError, match="already mapped"):
        pt.map_pages_sparse(
            edge, np.array([0, 1], dtype=np.int64),
            np.array([5, 6], dtype=np.int64), RW,
        )
    donor = PageTable()
    donor.map_page(0, 1, RW)
    pt.share_pml4_slot(SLOT, donor)
