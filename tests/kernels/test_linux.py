"""Unit tests for the Linux kernel model: demand paging, gup, remap."""

import numpy as np
import pytest

from repro.kernels.addrspace import RegionKind
from repro.kernels.base import KernelError
from repro.kernels.pagetable import PAGE_SIZE, PageFault, PTE_PINNED


def test_mmap_anonymous_is_lazy(rig):
    eng, _node, linux, _ = rig
    proc = linux.create_process("p")

    def run():
        region = yield from linux.mmap_anonymous(proc, 10 * PAGE_SIZE)
        return region

    region = eng.run_process(run())
    assert region.kind is RegionKind.LAZY
    assert region.populated == 0
    with pytest.raises(PageFault):
        proc.aspace.table.translate(region.start)


def test_fault_populates_anonymous_page(rig):
    eng, _node, linux, _ = rig
    proc = linux.create_process("p")

    def run():
        region = yield from linux.mmap_anonymous(proc, 4 * PAGE_SIZE)
        pfn = yield from linux.handle_fault(proc, region.start + PAGE_SIZE + 7)
        return region, pfn

    region, pfn = eng.run_process(run())
    assert region.populated == 1
    assert proc.aspace.table.translate(region.start + PAGE_SIZE)[0] == pfn
    assert linux.fault_count == 1


def test_fault_on_unmapped_address_propagates(rig):
    eng, _node, linux, _ = rig
    proc = linux.create_process("p")

    def run():
        yield from linux.handle_fault(proc, 0xDEAD000)

    with pytest.raises(PageFault):
        eng.run_process(run())


def test_fault_in_eager_region_is_kernel_bug(rig):
    eng, _node, linux, kitten = rig
    kp = kitten.create_process("k")
    lp = linux.create_process("l")

    def run():
        pfns = yield from kitten.walk_for_export(kp, kitten.heap_region(kp).start, 4)
        region = yield from linux.map_remote_pfns(lp, pfns)
        yield from linux.handle_fault(lp, region.start)

    with pytest.raises(KernelError, match="non-LAZY"):
        eng.run_process(run())


def test_touch_pages_bulk_faults_whole_lazy_region(rig):
    eng, _node, linux, _ = rig
    proc = linux.create_process("p")

    def run():
        region = yield from linux.mmap_anonymous(proc, 100 * PAGE_SIZE)
        t0 = eng.now
        faults = yield from linux.touch_pages(proc, region.start, 100)
        return region, faults, eng.now - t0

    region, faults, elapsed = eng.run_process(run())
    assert faults == 100
    assert region.populated == 100
    expected = 100 * (linux.costs.linux_page_fault_ns + linux.costs.page_touch_ns)
    assert elapsed == expected


def test_touch_pages_second_pass_is_fault_free(rig):
    eng, _node, linux, _ = rig
    proc = linux.create_process("p")

    def run():
        region = yield from linux.mmap_anonymous(proc, 50 * PAGE_SIZE)
        yield from linux.touch_pages(proc, region.start, 50)
        t0 = eng.now
        faults = yield from linux.touch_pages(proc, region.start, 50)
        return faults, eng.now - t0

    faults, elapsed = eng.run_process(run())
    assert faults == 0
    assert elapsed == 50 * linux.costs.page_touch_ns


def test_touch_pages_partial_population_faults_only_holes(rig):
    eng, _node, linux, _ = rig
    proc = linux.create_process("p")

    def run():
        region = yield from linux.mmap_anonymous(proc, 10 * PAGE_SIZE)
        yield from linux.handle_fault(proc, region.start + 3 * PAGE_SIZE)
        faults = yield from linux.touch_pages(proc, region.start, 10)
        return faults

    assert eng.run_process(run()) == 9


def test_get_user_pages_pins_and_returns_pfns(rig):
    eng, _node, linux, _ = rig
    proc = linux.create_process("p")

    def run():
        region = yield from linux.mmap_anonymous(proc, 20 * PAGE_SIZE)
        pfns = yield from linux.pin_pages(proc, region.start, 20)
        return region, pfns

    region, pfns = eng.run_process(run())
    assert len(pfns) == 20
    assert region.populated == 20  # gup faulted everything in
    assert proc.aspace.table.range_flags_all(region.start, 20, PTE_PINNED)
    assert linux.gup_pinned_pages == 20


def test_linux_walk_for_export_includes_gup(rig):
    eng, _node, linux, _ = rig
    proc = linux.create_process("p")

    def run():
        region = yield from linux.mmap_anonymous(proc, 8 * PAGE_SIZE)
        pfns = yield from linux.walk_for_export(proc, region.start, 8)
        return region, pfns

    region, pfns = eng.run_process(run())
    assert proc.aspace.table.range_flags_all(region.start, 8, PTE_PINNED)
    assert (proc.aspace.table.translate_range(region.start, 8) == pfns).all()


def test_map_lock_guards_vma_carve_but_installs_run_concurrently(rig):
    """The global lock covers only the VMA carve; per-process PTE
    installs proceed in parallel (mmap_sem is per-process in Linux)."""
    eng, _node, linux, kitten = rig
    kp = kitten.create_process("k")
    heap = kitten.heap_region(kp)
    lp1 = linux.create_process("a", core_id=linux.cores[0].core_id)
    lp2 = linux.create_process("b", core_id=linux.cores[1].core_id)

    def eng_core(lp):
        return linux.node.core(lp.core_id)

    def attacher(lp, offset_pages, npages):
        pfns = yield from kitten.walk_for_export(
            kp, heap.start + offset_pages * PAGE_SIZE, npages,
            core=eng_core(lp),
        )
        region = yield from linux.map_remote_pfns(lp, pfns, core=eng_core(lp))
        return region, eng.now

    big = 512
    pa = eng.spawn(attacher(lp1, 0, big))
    pb = eng.spawn(attacher(lp2, big, big))
    eng.run()
    (ra, ta), (rb, tb) = pa.result, pb.result
    assert ra.populated == big and rb.populated == big
    assert linux.map_lock.stats.acquisitions == 2
    # concurrency: the later finisher did NOT wait for the earlier one's
    # whole install (serial time would be ~2x one install)
    install_ns = big * linux.costs.map_install_per_page_ns
    assert max(ta, tb) < 2 * (install_ns + big * linux.costs.walk_per_page_ns)


def test_attach_local_lazy_defers_population(rig):
    eng, _node, linux, _ = rig
    exporter = linux.create_process("exp")
    attacher = linux.create_process("att")

    def run():
        region = yield from linux.mmap_anonymous(exporter, 16 * PAGE_SIZE)
        pfns = yield from linux.walk_for_export(exporter, region.start, 16)
        att = yield from linux.attach_local_lazy(attacher, pfns)
        return pfns, att

    pfns, att = eng.run_process(run())
    assert att.kind is RegionKind.LAZY
    assert att.populated == 0

    def touch():
        faults = yield from linux.touch_pages(attacher, att.start, 16)
        return faults

    assert eng.run_process(touch()) == 16
    # and the faulted pages map the exporter's frames: true shared memory
    got = attacher.aspace.table.translate_range(att.start, 16)
    assert (got == pfns).all()
