"""Unit tests for address-space regions and placement."""

import numpy as np
import pytest

from repro.kernels.addrspace import AddressSpace, Region, RegionKind
from repro.kernels.pagetable import PAGE_SIZE, PageFault


def test_region_basics():
    r = Region(0x4000, 4, RegionKind.STATIC, "heap")
    assert r.end == 0x4000 + 4 * PAGE_SIZE
    assert r.nbytes == 4 * PAGE_SIZE
    assert r.contains(0x4000) and not r.contains(r.end)
    assert r.page_index(0x4000 + PAGE_SIZE) == 1
    with pytest.raises(ValueError):
        r.page_index(0x0)


def test_region_validation():
    with pytest.raises(ValueError):
        Region(0x4001, 1, RegionKind.LAZY)
    with pytest.raises(ValueError):
        Region(0x4000, 0, RegionKind.LAZY)


def test_add_region_rejects_overlap():
    a = AddressSpace()
    a.add_region(0x4000, 10, RegionKind.STATIC, "one")
    with pytest.raises(ValueError, match="overlaps"):
        a.add_region(0x4000 + 9 * PAGE_SIZE, 5, RegionKind.STATIC, "two")


def test_add_region_beyond_limit():
    a = AddressSpace()
    with pytest.raises(ValueError, match="VA limit"):
        a.add_region((1 << 47) - PAGE_SIZE, 2, RegionKind.STATIC)


def test_find_region():
    a = AddressSpace()
    r = a.add_region(0x4000, 2, RegionKind.LAZY)
    assert a.find_region(0x4000 + 100) is r
    assert a.find_region(0x100000) is None


def test_find_free_skips_existing_regions():
    a = AddressSpace()
    base = AddressSpace.MMAP_BASE
    a.add_region(base, 10, RegionKind.EAGER, "first")
    va = a.find_free(5)
    assert va == base + 10 * PAGE_SIZE
    a.add_region(va, 5, RegionKind.EAGER, "second")
    assert a.find_free(1) == va + 5 * PAGE_SIZE


def test_find_free_fills_gap():
    a = AddressSpace()
    base = AddressSpace.MMAP_BASE
    a.add_region(base + 4 * PAGE_SIZE, 4, RegionKind.EAGER, "island")
    assert a.find_free(4) == base  # gap before the island fits
    assert a.find_free(5) == base + 8 * PAGE_SIZE


def test_find_free_exhaustion():
    a = AddressSpace(va_limit=AddressSpace.MMAP_BASE + 4 * PAGE_SIZE)
    with pytest.raises(MemoryError):
        a.find_free(5)


def test_map_region_pfns_populates():
    a = AddressSpace()
    r = a.add_region(0x0, 8, RegionKind.EAGER)
    a.map_region_pfns(r, np.arange(8, dtype=np.int64))
    assert r.populated == 8
    assert (a.table.translate_range(0x0, 8) == np.arange(8)).all()


def test_map_region_pfns_wrong_count():
    a = AddressSpace()
    r = a.add_region(0x0, 8, RegionKind.EAGER)
    with pytest.raises(ValueError):
        a.map_region_pfns(r, np.arange(7, dtype=np.int64))


def test_populate_page_lazy_only():
    a = AddressSpace()
    lazy = a.add_region(0x0, 4, RegionKind.LAZY)
    a.populate_page(lazy, PAGE_SIZE, 55)
    assert lazy.populated == 1
    assert a.table.translate(PAGE_SIZE)[0] == 55
    eager = a.add_region(0x10000, 4, RegionKind.EAGER)
    with pytest.raises(ValueError, match="non-LAZY"):
        a.populate_page(eager, 0x10000, 1)


def test_unmap_region_full_and_partial():
    a = AddressSpace()
    r = a.add_region(0x0, 4, RegionKind.EAGER)
    a.map_region_pfns(r, np.arange(4, dtype=np.int64) + 10)
    pfns = a.unmap_region(r)
    assert sorted(pfns) == [10, 11, 12, 13]
    assert a.find_region(0x0) is None

    lazy = a.add_region(0x0, 4, RegionKind.LAZY)
    a.populate_page(lazy, PAGE_SIZE, 99)
    with pytest.raises(ValueError, match="partially populated"):
        a.unmap_region(lazy)
    got = a.unmap_populated_pages(lazy)
    assert list(got) == [99]
    assert a.table.present_pages == 0


def test_total_mapped_pages():
    a = AddressSpace()
    r = a.add_region(0x0, 3, RegionKind.EAGER)
    a.map_region_pfns(r, np.arange(3, dtype=np.int64))
    assert a.total_mapped_pages() == 3
