"""Dynamic partitioning: enclave hot-add, departure, failure injection.

The paper's §3.2 expects a node's partitions to be dynamic ("will change
in response to the node's workload characteristics"); these tests cover
the departure/arrival half the paper leaves as architecture vision.
"""

import pytest

from repro.enclave.enclave import ChannelClosedError
from repro.enclave.topology import DiscoveryError
from repro.hw.costs import MB, PAGE_4K
from repro.pisces import PartitionError
from repro.xemem import XememError, XememModule, XpmemApi

from tests.xemem.conftest import build_system


def test_hot_add_cokernel_discovers_and_attaches():
    rig = build_system(num_cokernels=1)
    eng, system, pisces = rig["engine"], rig["system"], rig["pisces"]
    late = pisces.boot_cokernel(core_ids=[15], mem_bytes=256 * MB, zone_id=1,
                                name="late")
    XememModule(late)
    new_id = system.add_and_discover(late)
    assert late.enclave_id == new_id
    assert new_id not in (e.enclave_id for e in system.enclaves if e is not late)
    # and it is immediately usable
    kp = late.kernel.create_process("exp")
    lp = rig["linux"].kernel.create_process("att", core_id=3)
    heap = late.kernel.heap_region(kp)

    def run():
        api_k, api_l = XpmemApi(kp), XpmemApi(lp)
        segid = yield from api_k.xpmem_make(heap.start, 16 * PAGE_4K)
        apid = yield from api_l.xpmem_get(segid)
        att = yield from api_l.xpmem_attach(apid)
        api_k.segment(segid).view().write(0, b"late")
        return att.read(0, 4)

    assert eng.run_process(run()) == b"late"


def test_hot_add_requires_module_and_channel():
    rig = build_system(num_cokernels=1)
    system, pisces = rig["system"], rig["pisces"]
    late = pisces.boot_cokernel(core_ids=[15], mem_bytes=256 * MB, zone_id=1)
    with pytest.raises(DiscoveryError, match="no XEMEM module"):
        system.add_and_discover(late)


def test_shutdown_retires_segids_at_name_server():
    rig = build_system(num_cokernels=2)
    eng, system = rig["engine"], rig["system"]
    kitten = rig["cokernels"][0]
    kp = kitten.kernel.create_process("exp")
    heap = kitten.kernel.heap_region(kp)
    ns = rig["linux"].module.nameserver

    def export():
        api = XpmemApi(kp)
        s1 = yield from api.xpmem_make(heap.start, 4 * PAGE_4K, name="doomed")
        s2 = yield from api.xpmem_make(heap.start + 16 * PAGE_4K, 4 * PAGE_4K)
        return s1, s2

    s1, _s2 = eng.run_process(export())
    live_before = ns.live_segments
    system.shutdown_enclave(kitten)
    assert ns.live_segments == live_before - 2
    assert ns.lookup_name("doomed") is None
    assert kitten not in system.enclaves
    # routing entries purged at the name server
    assert kitten.enclave_id not in rig["linux"].module.routing.routes

    # a get on the dead enclave's segid now errors cleanly
    lp = rig["linux"].kernel.create_process("att", core_id=2)

    def try_get():
        api = XpmemApi(lp)
        with pytest.raises(XememError, match="unknown segid"):
            yield from api.xpmem_get(s1)
        return True

    assert eng.run_process(try_get())


def test_shutdown_refused_with_outstanding_grants():
    rig = build_system(num_cokernels=1)
    eng, system = rig["engine"], rig["system"]
    kitten = rig["cokernels"][0]
    kp = kitten.kernel.create_process("exp")
    lp = rig["linux"].kernel.create_process("att", core_id=2)
    heap = kitten.kernel.heap_region(kp)

    def setup():
        api_k, api_l = XpmemApi(kp), XpmemApi(lp)
        segid = yield from api_k.xpmem_make(heap.start, 4 * PAGE_4K)
        apid = yield from api_l.xpmem_get(segid)
        return api_l, apid

    api_l, apid = eng.run_process(setup())
    with pytest.raises(XememError, match="outstanding grant"):
        system.shutdown_enclave(kitten)

    # releasing the grant unblocks departure
    def release():
        yield from api_l.xpmem_release(apid)

    eng.run_process(release())
    system.shutdown_enclave(kitten)
    assert kitten not in system.enclaves


def test_forced_shutdown_overrides_grants():
    rig = build_system(num_cokernels=1)
    eng, system = rig["engine"], rig["system"]
    kitten = rig["cokernels"][0]
    kp = kitten.kernel.create_process("exp")
    lp = rig["linux"].kernel.create_process("att", core_id=2)
    heap = kitten.kernel.heap_region(kp)

    def setup():
        api_k, api_l = XpmemApi(kp), XpmemApi(lp)
        segid = yield from api_k.xpmem_make(heap.start, 4 * PAGE_4K)
        apid = yield from api_l.xpmem_get(segid)
        att = yield from api_l.xpmem_attach(apid)
        return att

    att = eng.run_process(setup())
    system.shutdown_enclave(kitten, force=True)
    # the dangling attachment still reads the frames (they are not
    # reused until Pisces reclaims the partition)
    assert att.read(0, 1) is not None


def test_name_server_cannot_depart():
    rig = build_system(num_cokernels=1)
    with pytest.raises(DiscoveryError, match="name-server"):
        rig["system"].shutdown_enclave(rig["linux"])


def test_transit_enclave_cannot_depart():
    """A VM's host co-kernel is on the route to the VM: not a leaf."""
    rig = build_system(num_cokernels=1, with_vm=True, vm_host="kitten")
    with pytest.raises(DiscoveryError, match="not a leaf"):
        rig["system"].shutdown_enclave(rig["cokernels"][0])
    # the VM itself IS a leaf and can depart
    rig["system"].shutdown_enclave(rig["vm"])
    # after which the host co-kernel becomes a leaf too
    rig["system"].shutdown_enclave(rig["cokernels"][0])


def test_closed_channel_rejects_sends():
    rig = build_system(num_cokernels=1)
    eng = rig["engine"]
    kitten = rig["cokernels"][0]
    channel = kitten.module.routing.ns_channel
    rig["system"].shutdown_enclave(kitten)
    assert channel.closed

    def send():
        from repro.xemem import commands as C

        yield from channel.send(
            rig["linux"], C.make_command(C.LOOKUP_NAME, 0, 1, req_id="x", name="n")
        )

    with pytest.raises(ChannelClosedError):
        eng.run_process(send())


def test_pisces_reclaims_partition_after_departure():
    rig = build_system(num_cokernels=1)
    system, pisces, node = rig["system"], rig["pisces"], rig["node"]
    kitten = rig["cokernels"][0]
    kernel = kitten.kernel
    zone_free_before_boot = None  # partition already carved at build time
    proc = kernel.create_process("app")
    # cannot reclaim while a process holds frames
    system.shutdown_enclave(kitten)
    with pytest.raises(PartitionError, match="still holds"):
        pisces.teardown_cokernel(kitten)
    kernel.destroy_process(proc)
    assert kernel.allocator.used_frames == 0
    free_before = node.memory.zone(1).allocator.free_frames
    pisces.teardown_cokernel(kitten)
    assert node.memory.zone(1).allocator.free_frames > free_before
    assert all(core.owner is None for core in kernel.cores)


def test_destroy_process_keeps_foreign_frames():
    rig = build_system(num_cokernels=1)
    eng = rig["engine"]
    kitten = rig["cokernels"][0].kernel
    linux = rig["linux"].kernel
    kp = kitten.create_process("exp")
    lp = linux.create_process("att", core_id=2)
    heap = kitten.heap_region(kp)
    kitten_used_before = kitten.allocator.used_frames

    def run():
        api_k, api_l = XpmemApi(kp), XpmemApi(lp)
        segid = yield from api_k.xpmem_make(heap.start, 8 * PAGE_4K)
        apid = yield from api_l.xpmem_get(segid)
        att = yield from api_l.xpmem_attach(apid)
        return att

    eng.run_process(run())
    # destroying the Linux attacher must not free the Kitten's frames
    linux.destroy_process(lp)
    assert kitten.allocator.used_frames == kitten_used_before
