"""Departure must not leak per-registration module state (stale grants,
attachment refcounts, signal plumbing, apid counters)."""

from repro.hw.costs import PAGE_4K
from repro.xemem import XememError, XpmemApi

from tests.xemem.conftest import build_system


def test_shutdown_clears_all_module_state():
    rig = build_system(num_cokernels=2)
    eng, system = rig["engine"], rig["system"]
    exporter, attacher = rig["cokernels"]
    kp = exporter.kernel.create_process("exp")
    ap = attacher.kernel.create_process("att")
    heap = exporter.kernel.heap_region(kp)

    def setup():
        api_e, api_a = XpmemApi(kp), XpmemApi(ap)
        segid = yield from api_e.xpmem_make(heap.start, 4 * PAGE_4K)
        apid = yield from api_a.xpmem_get(segid)
        att = yield from api_a.xpmem_attach(apid)
        return att

    eng.run_process(setup())
    module = attacher.module
    assert module.grants and module._live_attachments  # state exists to clear

    system.shutdown_enclave(attacher, force=True)

    assert module.segments == {}
    assert module.grants == {}
    assert module._live_attachments == {}
    assert module._smartmap_refs == {}
    assert module._signal_subs == {}
    assert module._signal_state == {}
    # apid minting restarts from 1 on a later re-join
    assert next(module._apid_counter) == 1
    assert not module.routing.discovered


def test_forced_shutdown_fails_parked_signal_waiters():
    rig = build_system(num_cokernels=1)
    eng, system = rig["engine"], rig["system"]
    kitten = rig["cokernels"][0]
    kp = kitten.kernel.create_process("exp")
    waiter_proc = kitten.kernel.create_process("waiter")
    heap = kitten.kernel.heap_region(kp)

    def export():
        api = XpmemApi(kp)
        return (yield from api.xpmem_make(heap.start, 4 * PAGE_4K))

    segid = eng.run_process(export())

    def waiter():
        api = XpmemApi(waiter_proc)
        try:
            yield from api.xpmem_wait(segid)
        except XememError as err:
            return ("failed", str(err))
        return "woken"

    parked = eng.spawn(waiter())
    eng.run()
    assert not parked.finished  # still parked on the doorbell

    system.shutdown_enclave(kitten, force=True)
    eng.run()
    outcome = parked.result
    assert outcome[0] == "failed"
    assert "departed" in outcome[1]
    assert kitten.module._signal_state == {}


def test_unforced_shutdown_leaves_no_waiter_behind_either():
    """Without force, departure with no outstanding grants still clears
    the signal plumbing (waiters of an empty cell simply disappear with
    the enclave; nothing dangles into a re-join)."""
    rig = build_system(num_cokernels=1)
    eng, system = rig["engine"], rig["system"]
    kitten = rig["cokernels"][0]
    system.shutdown_enclave(kitten)
    assert kitten.module._signal_state == {}
    assert kitten.module.grants == {}
    assert next(kitten.module._apid_counter) == 1
