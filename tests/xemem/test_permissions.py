"""Read-only grants must yield read-only mappings on every attach path."""

import pytest

from repro.hw.costs import PAGE_4K
from repro.kernels.pagetable import PTE_WRITABLE, PageFault
from repro.xemem import XpmemApi

from tests.xemem.conftest import build_system

NPAGES = 16


def _export_and_get(eng, exp_proc, heap_start, att_proc, write):
    def run():
        api_e, api_a = XpmemApi(exp_proc), XpmemApi(att_proc)
        segid = yield from api_e.xpmem_make(heap_start, NPAGES * PAGE_4K)
        apid = yield from api_a.xpmem_get(segid, write=write)
        att = yield from api_a.xpmem_attach(apid)
        return segid, att

    return eng.run_process(run())


def test_readonly_remote_attach_rejects_writes():
    rig = build_system(num_cokernels=1)
    eng = rig["engine"]
    kitten = rig["cokernels"][0]
    kp = kitten.kernel.create_process("exp")
    lp = rig["linux"].kernel.create_process("att", core_id=2)
    heap = kitten.kernel.heap_region(kp)
    _segid, att = _export_and_get(eng, kp, heap.start, lp, write=False)

    assert att.read(0, 4) is not None
    with pytest.raises(PermissionError):
        att.write(0, b"nope")
    # the installed PTEs are read-only, so a write *touch* protection-faults
    table = lp.aspace.table
    assert not table.range_flags_all(att.vaddr, NPAGES, PTE_WRITABLE)

    def touch_write():
        yield from rig["linux"].kernel.touch_pages(
            lp, att.vaddr, NPAGES, write=True
        )

    with pytest.raises(PageFault) as excinfo:
        eng.run_process(touch_write())
    assert excinfo.value.write


def test_readonly_linux_local_lazy_attach():
    rig = build_system(num_cokernels=1)
    eng = rig["engine"]
    linux = rig["linux"].kernel
    exp = linux.create_process("exp", core_id=1)
    att_proc = linux.create_process("att", core_id=2)

    def setup():
        region = yield from linux.mmap_anonymous(exp, NPAGES * PAGE_4K, "src")
        yield from linux.touch_pages(exp, region.start, NPAGES)
        api_e, api_a = XpmemApi(exp), XpmemApi(att_proc)
        segid = yield from api_e.xpmem_make(region.start, NPAGES * PAGE_4K)
        apid = yield from api_a.xpmem_get(segid, write=False)
        attached = yield from api_a.xpmem_attach(apid)
        # a *read* touch demand-populates the lazy window read-only
        yield from linux.touch_pages(att_proc, attached.vaddr, NPAGES)
        return attached

    att = eng.run_process(setup())
    assert att.kind == "linux-lazy"
    assert not att_proc.aspace.table.range_flags_all(
        att.vaddr, NPAGES, PTE_WRITABLE
    )
    with pytest.raises(PermissionError):
        att.write(0, b"nope")

    # writing through the populated read-only window is a protection fault
    def touch_write():
        yield from linux.touch_pages(att_proc, att.vaddr, NPAGES, write=True)

    with pytest.raises(PageFault) as excinfo:
        eng.run_process(touch_write())
    assert excinfo.value.write


def test_readonly_smartmap_attach_rejects_writes():
    rig = build_system(num_cokernels=1)
    eng = rig["engine"]
    kitten = rig["cokernels"][0]
    kp = kitten.kernel.create_process("exp")
    kp2 = kitten.kernel.create_process("att")
    heap = kitten.kernel.heap_region(kp)
    _segid, att = _export_and_get(eng, kp, heap.start, kp2, write=False)

    assert att.kind == "smartmap"
    assert att.read(0, 4) is not None
    with pytest.raises(PermissionError):
        att.write(0, b"nope")
    with pytest.raises(PermissionError):
        att.view.fill(0x5A)


def test_writable_grant_still_works_end_to_end():
    rig = build_system(num_cokernels=1)
    eng = rig["engine"]
    kitten = rig["cokernels"][0]
    kp = kitten.kernel.create_process("exp")
    lp = rig["linux"].kernel.create_process("att", core_id=2)
    heap = kitten.kernel.heap_region(kp)
    segid, att = _export_and_get(eng, kp, heap.start, lp, write=True)

    att.write(0, b"ok!!")
    exporter_view = None
    for seg in kitten.module.segments.values():
        if seg.segid == segid:
            exporter_view = seg.view()
    assert exporter_view.read(0, 4) == b"ok!!"
    assert lp.aspace.table.range_flags_all(att.vaddr, NPAGES, PTE_WRITABLE)
