"""Fixtures: fully assembled multi-enclave systems with XEMEM installed."""

import pytest

from repro.enclave import EnclaveSystem
from repro.hw import NodeHardware, R420_SPEC
from repro.hw.costs import GB, MB
from repro.pisces import PiscesManager
from repro.sim import Engine
from repro.xemem import install_xemem


def build_system(num_cokernels=1, with_vm=False, vm_host="linux",
                 cokernel_mem=1536 * MB, memmap_backend="rbtree",
                 ipi_target_policy="core0", vm_ram=2 * GB):
    """The paper's standard single-node rig: Linux (name server) + Kitten
    co-kernels, optionally a Palacios VM on Linux or on a co-kernel."""
    eng = Engine()
    node = NodeHardware(eng, R420_SPEC)
    pisces = PiscesManager(node)
    # Socket 0 / zone 0 for Linux; socket 1 / zone 1 for co-kernels —
    # the paper pins each enclave to one NUMA socket (§5.1).
    linux = pisces.boot_linux(core_ids=range(0, 8), mem_bytes=8 * GB)
    # a co-kernel that hosts a VM needs the VM's RAM in its partition
    extra = vm_ram + 256 * MB if (with_vm and vm_host == "kitten") else 0
    cokernels = [
        pisces.boot_cokernel(
            core_ids=[12 + i],
            mem_bytes=cokernel_mem + (extra if i == 0 else 0),
            zone_id=1,
            name=f"kitten{i}", ipi_target_policy=ipi_target_policy,
        )
        for i in range(num_cokernels)
    ]
    system = EnclaveSystem(node)
    system.add_all(pisces.all_enclaves)
    vm = None
    if with_vm:
        host = linux if vm_host == "linux" else cokernels[0]
        vm = pisces.boot_vm(
            host, core_ids=[20, 21], ram_bytes=vm_ram,
            name="vm0", memmap_backend=memmap_backend,
        )
        system.add_enclave(vm)
    system.designate_name_server(linux)
    modules = install_xemem(system)
    return {
        "engine": eng,
        "node": node,
        "pisces": pisces,
        "system": system,
        "linux": linux,
        "cokernels": cokernels,
        "vm": vm,
        "modules": modules,
    }


@pytest.fixture
def basic():
    """Linux (NS) + one Kitten co-kernel."""
    return build_system(num_cokernels=1)


@pytest.fixture
def with_vm_on_linux():
    """Linux (NS) + one Kitten co-kernel + VM hosted on Linux."""
    return build_system(num_cokernels=1, with_vm=True, vm_host="linux")


@pytest.fixture
def with_vm_on_kitten():
    """Linux (NS) + one Kitten co-kernel + VM hosted on the co-kernel."""
    return build_system(num_cokernels=1, with_vm=True, vm_host="kitten")
