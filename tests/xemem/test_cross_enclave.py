"""Integration tests: cross-enclave attachments (the Fig. 3 protocol)."""

import numpy as np
import pytest

from repro.hw.costs import MB, PAGE_4K
from repro.xemem import XememError, XpmemApi

from tests.xemem.conftest import build_system


def test_kitten_export_linux_attach(basic):
    """The paper's main configuration: Kitten exports, Linux attaches."""
    eng = basic["engine"]
    kitten = basic["cokernels"][0].kernel
    linux = basic["linux"].kernel
    kp = kitten.create_process("sim")
    lp = linux.create_process("analytics", core_id=2)
    heap = kitten.heap_region(kp)

    def run():
        api_k, api_l = XpmemApi(kp), XpmemApi(lp)
        segid = yield from api_k.xpmem_make(heap.start, 1 * MB)
        apid = yield from api_l.xpmem_get(segid)
        att = yield from api_l.xpmem_attach(apid)
        # cross-enclave zero copy, both directions
        api_k.segment(segid).view().write(0, b"sim output")
        assert att.read(0, 10) == b"sim output"
        att.write(100, b"analytics reply")
        got = api_k.segment(segid).view().read(100, 15)
        # the attachment is an EAGER mapping of the kitten frames
        pfns = lp.aspace.table.translate_range(att.vaddr, att.npages)
        assert all(kitten.owns_pfn(int(p)) for p in pfns)
        yield from api_l.xpmem_detach(att)
        return got, att.kind

    got, kind = eng.run_process(run())
    assert got == b"analytics reply"
    assert kind == "remote"
    assert basic["cokernels"][0].module.stats["attaches_served"] == 1
    assert basic["linux"].module.stats["attaches_made"] == 1


def test_linux_export_kitten_attach(basic):
    eng = basic["engine"]
    kitten = basic["cokernels"][0].kernel
    linux = basic["linux"].kernel
    lp = linux.create_process("exporter", core_id=1)
    kp = kitten.create_process("attacher")

    def run():
        region = yield from linux.mmap_anonymous(lp, 1 * MB)
        api_l, api_k = XpmemApi(lp), XpmemApi(kp)
        segid = yield from api_l.xpmem_make(region.start, 1 * MB)
        apid = yield from api_k.xpmem_get(segid)
        att = yield from api_k.xpmem_attach(apid)
        api_l.segment(segid).view().write(7, b"linux data")
        got = att.read(7, 10)
        # kitten placed it via dynamic heap expansion
        heap = kitten.heap_region(kp)
        assert att.vaddr >= heap.end
        return got

    assert eng.run_process(run()) == b"linux data"


def test_kitten_to_kitten_attach_routes_via_linux():
    """Owner and attacher in sibling co-kernels: commands route through
    the name server's enclave (two hops each way)."""
    rig = build_system(num_cokernels=2)
    eng = rig["engine"]
    k0, k1 = (e.kernel for e in rig["cokernels"])
    exp = k0.create_process("exp")
    att_p = k1.create_process("att")
    heap = k0.heap_region(exp)

    def run():
        api_x, api_a = XpmemApi(exp), XpmemApi(att_p)
        segid = yield from api_x.xpmem_make(heap.start, 64 * PAGE_4K)
        apid = yield from api_a.xpmem_get(segid)
        att = yield from api_a.xpmem_attach(apid)
        api_x.segment(segid).view().write(0, b"sibling")
        return att.read(0, 7)

    assert eng.run_process(run()) == b"sibling"
    # the linux enclave forwarded segment traffic it did not originate
    assert rig["linux"].module.stats["messages_forwarded"] > 0


def test_discoverability_by_name(basic):
    eng = basic["engine"]
    kitten = basic["cokernels"][0].kernel
    linux = basic["linux"].kernel
    kp = kitten.create_process("sim")
    lp = linux.create_process("analytics", core_id=2)
    heap = kitten.heap_region(kp)

    def run():
        api_k, api_l = XpmemApi(kp), XpmemApi(lp)
        segid = yield from api_k.xpmem_make(
            heap.start, 16 * PAGE_4K, name="sim-output"
        )
        found = yield from api_l.xpmem_search("sim-output")
        assert found == segid
        missing = yield from api_l.xpmem_search("nope")
        assert missing is None
        # duplicate names are rejected by the name server
        with pytest.raises(XememError):
            yield from api_k.xpmem_make(
                heap.start + 16 * PAGE_4K, PAGE_4K, name="sim-output"
            )
        return True

    assert eng.run_process(run())


def test_list_names_discoverability(basic):
    """§3.1: the name server enumerates registered segment names."""
    eng = basic["engine"]
    kitten = basic["cokernels"][0].kernel
    linux = basic["linux"].kernel
    kp = kitten.create_process("sim")
    lp = linux.create_process("obs", core_id=3)
    heap = kitten.heap_region(kp)

    def run():
        api_k, api_l = XpmemApi(kp), XpmemApi(lp)
        s1 = yield from api_k.xpmem_make(heap.start, 4 * PAGE_4K, name="sim-grid")
        s2 = yield from api_k.xpmem_make(
            heap.start + 4 * PAGE_4K, 4 * PAGE_4K, name="sim-flags"
        )
        _anon = yield from api_k.xpmem_make(heap.start + 8 * PAGE_4K, 4 * PAGE_4K)
        # query from a remote enclave (routed) and locally at the NS
        remote_view = yield from XpmemApi(
            kitten.create_process("q")
        ).xpmem_list("sim-")
        local_view = yield from api_l.xpmem_list()
        assert remote_view == {"sim-grid": s1, "sim-flags": s2}
        assert set(local_view) == {"sim-grid", "sim-flags"}
        # removal drops the name from the listing
        yield from api_k.xpmem_remove(s1)
        after = yield from api_l.xpmem_list("sim-")
        assert set(after) == {"sim-flags"}
        return True

    assert eng.run_process(run())


def test_attach_unknown_segid_errors(basic):
    eng = basic["engine"]
    linux = basic["linux"].kernel
    lp = linux.create_process("p", core_id=1)

    def run():
        from repro.xemem.ids import SegmentId

        api = XpmemApi(lp)
        with pytest.raises(XememError, match="unknown"):
            yield from api.xpmem_get(SegmentId(0x999999))
        return True

    assert eng.run_process(run())


def test_concurrent_attachments_from_multiple_enclaves():
    """The Fig. 6 scenario: one Linux process per co-kernel, all attaching
    simultaneously."""
    rig = build_system(num_cokernels=4)
    eng = rig["engine"]
    linux = rig["linux"].kernel
    results = {}

    def pair(i, kitten_enclave):
        kitten = kitten_enclave.kernel
        kp = kitten.create_process(f"exp{i}")
        lp = linux.create_process(f"att{i}", core_id=1 + i)
        heap = kitten.heap_region(kp)
        api_k, api_l = XpmemApi(kp), XpmemApi(lp)
        segid = yield from api_k.xpmem_make(heap.start, 128 * PAGE_4K)
        apid = yield from api_l.xpmem_get(segid)
        att = yield from api_l.xpmem_attach(apid)
        api_k.segment(segid).view().write(0, bytes([i] * 8))
        results[i] = att.read(0, 8)
        yield from api_l.xpmem_detach(att)

    procs = [
        eng.spawn(pair(i, ke), name=f"pair{i}")
        for i, ke in enumerate(rig["cokernels"])
    ]
    eng.run()
    assert all(p.finished and not p.failed for p in procs)
    for i in range(4):
        assert results[i] == bytes([i] * 8)


def test_detach_remote_unmaps_and_keeps_frames(basic):
    eng = basic["engine"]
    kitten = basic["cokernels"][0].kernel
    linux = basic["linux"].kernel
    kp = kitten.create_process("exp")
    lp = linux.create_process("att", core_id=2)
    heap = kitten.heap_region(kp)
    used_before = kitten.allocator.used_frames

    def run():
        api_k, api_l = XpmemApi(kp), XpmemApi(lp)
        segid = yield from api_k.xpmem_make(heap.start, 64 * PAGE_4K)
        apid = yield from api_l.xpmem_get(segid)
        att = yield from api_l.xpmem_attach(apid)
        yield from api_l.xpmem_detach(att)
        return att

    att = eng.run_process(run())
    # attacher's mapping is gone
    assert lp.aspace.find_region(att.vaddr) is None
    # exporter frames were NOT freed (they belong to the kitten process)
    assert kitten.allocator.used_frames == used_before


def test_exporter_data_written_before_attach_is_visible(basic):
    """Attach maps the same frames, regardless of when data was written."""
    eng = basic["engine"]
    kitten = basic["cokernels"][0].kernel
    linux = basic["linux"].kernel
    kp = kitten.create_process("exp")
    lp = linux.create_process("att", core_id=2)
    heap = kitten.heap_region(kp)
    # write before exporting anything
    pfns = kp.aspace.table.translate_range(heap.start, 4)
    kitten.mem.map_region(pfns).write(0, b"early bird")

    def run():
        api_k, api_l = XpmemApi(kp), XpmemApi(lp)
        segid = yield from api_k.xpmem_make(heap.start, 4 * PAGE_4K)
        apid = yield from api_l.xpmem_get(segid)
        att = yield from api_l.xpmem_attach(apid)
        return att.read(0, 10)

    assert eng.run_process(run()) == b"early bird"
