"""Unit tests for the overload-protection layer (repro.xemem.overload):
config spec parsing, the four-class admission ladder, CoDel shedding,
the client-side retry budget and circuit breaker, the degradation
ladder, and the arm/disarm lifecycle."""

import types

import pytest

from repro.sim import Engine
from repro.xemem import commands as C
from repro.xemem.overload import (
    CLASS_ATTACH, CLASS_DISCOVERY, CLASS_NEW, CLASS_RELEASE,
    CLOSED, HALF_OPEN, OPEN, REJECT, SERVE, SHED,
    AdmissionController, CircuitBreaker, ModuleOverload, OverloadConfig,
    RetryBudget, admission_totals, arm_overload, disarm_overload,
    priority_class,
)

from tests.xemem.conftest import build_system


class Clock:
    """Just enough engine for the clock-only components."""

    def __init__(self, now=0):
        self.now = now  # repro: noqa[REP006] reason=test clock stub for clock-only components (breaker/budget); no engine events involved


# -- config spec -------------------------------------------------------------

def test_config_parse_full_spec():
    cfg = OverloadConfig.parse(
        "policy=codel,workers=2,qcap=16,codeltarget=40us,codelint=80us,"
        "retryafter=100us,jitter=20us,budget=12,budgetwin=1ms,"
        "breaker=6,open=500us,clientretries=3,stalettl=250us,"
        "shedfill=0.4,gcfill=0.9",
        seed=7,
    )
    assert cfg.seed == 7
    assert cfg.policy == "codel"
    assert cfg.workers == 2
    assert cfg.queue_cap == 16
    assert cfg.codel_target_ns == 40_000
    assert cfg.codel_interval_ns == 80_000
    assert cfg.retry_after_ns == 100_000
    assert cfg.retry_jitter_ns == 20_000
    assert cfg.retry_budget == 12
    assert cfg.retry_budget_window_ns == 1_000_000
    assert cfg.breaker_threshold == 6
    assert cfg.breaker_open_ns == 500_000
    assert cfg.max_client_retries == 3
    assert cfg.stale_lookup_ttl_ns == 250_000
    assert cfg.shed_discovery_fill == 0.4
    assert cfg.defer_gc_fill == 0.9


def test_config_parse_rejects_junk():
    with pytest.raises(ValueError):
        OverloadConfig.parse("frobnicate=1")
    with pytest.raises(ValueError):
        OverloadConfig.parse("qcap")
    with pytest.raises(ValueError):
        OverloadConfig.parse("policy=lifo")
    with pytest.raises(ValueError):
        OverloadConfig.parse("workers=0")
    with pytest.raises(ValueError):
        OverloadConfig.parse("shedfill=1.5")


# -- priority classes --------------------------------------------------------

def test_priority_class_ladder():
    assert priority_class(C.RELEASE_REQ) == CLASS_RELEASE
    assert priority_class(C.REMOVE_SEGID) == CLASS_RELEASE
    assert priority_class(C.ENCLAVE_DEPART) == CLASS_RELEASE
    assert priority_class(C.ATTACH_REQ) == CLASS_ATTACH
    assert priority_class(C.SIGNAL_REQ) == CLASS_ATTACH
    assert priority_class(C.GET_REQ) == CLASS_NEW
    assert priority_class(C.ALLOC_SEGID) == CLASS_NEW
    assert priority_class(C.LOOKUP_NAME) == CLASS_DISCOVERY
    assert priority_class(C.LIST_NAMES) == CLASS_DISCOVERY
    # the freeing class must always outrank the others (anti-livelock)
    assert CLASS_RELEASE < CLASS_ATTACH < CLASS_NEW < CLASS_DISCOVERY


# -- admission: fail-fast ----------------------------------------------------

def _drive(cfg, arrivals, service_ns=10_000):
    """Run one controller through ``arrivals`` = [(gap_ns, kind), ...];
    returns (controller, verdicts-in-arrival-order)."""
    eng = Engine()
    ctrl = AdmissionController(cfg, eng, "t")
    verdicts = {}

    def req(i, kind):
        verdict = yield from ctrl.admit(kind)
        verdicts[i] = verdict
        if verdict == SERVE:
            yield eng.sleep(service_ns)
            ctrl.release()

    def root():
        for i, (gap, kind) in enumerate(arrivals):
            if gap:
                yield eng.sleep(gap)
            eng.spawn(req(i, kind), name=f"req{i}")
        yield eng.sleep(0)

    eng.run_process(root(), name="root")
    eng.run()
    return ctrl, [verdicts[i] for i in range(len(arrivals))]


def test_fail_fast_bounds_the_queue():
    cfg = OverloadConfig(policy="fail-fast", workers=1, queue_cap=4)
    # 8 new-flow requests at t=0: 1 serves, new-class cap (4 - 4//4 = 3)
    # park, the rest fail fast; the queue then drains in order.
    ctrl, verdicts = _drive(cfg, [(0, C.GET_REQ)] * 8)
    assert verdicts.count(SERVE) == 4
    assert verdicts.count(REJECT) == 4
    assert ctrl.offered == 8
    assert ctrl.admitted == 4 and ctrl.rejected == 4
    assert ctrl.completed == 4 and ctrl.waiting == 0
    assert ctrl.peak_waiting == 3  # never above the class cap


def test_release_class_admits_when_new_class_is_full():
    cfg = OverloadConfig(policy="fail-fast", workers=1, queue_cap=4)
    # Fill the new-flow share of the queue, then offer a release: the
    # headroom reserve must still admit it, and it must dispatch before
    # every queued GET despite arriving last.
    order = []
    eng = Engine()
    ctrl = AdmissionController(cfg, eng, "t")

    def req(tag, kind):
        verdict = yield from ctrl.admit(kind)
        if verdict == SERVE:
            order.append(tag)
            yield eng.sleep(1_000)
            ctrl.release()
        else:
            order.append(f"{tag}:{verdict}")

    for i in range(5):  # 1 serves + 3 park (new cap) + 1 rejected
        eng.spawn(req(f"get{i}", C.GET_REQ), name=f"get{i}")
    eng.spawn(req("rel", C.RELEASE_REQ), name="rel")
    eng.run()
    assert order[0] == "get0"
    assert "get4:reject" in order
    assert order.index("rel") < order.index("get1")  # frees jump the line
    assert ctrl.offered == 6
    assert ctrl.admitted + ctrl.rejected == 6


def test_discovery_share_is_smallest():
    cfg = OverloadConfig(policy="fail-fast", workers=1, queue_cap=8)
    # discovery cap = 8 // 2 = 4: one serves, four park, the rest fail
    # fast — while the same queue still takes new-flow traffic, whose
    # share (8 - 8//4 = 6) is larger.
    ctrl, verdicts = _drive(cfg, [(0, C.LOOKUP_NAME)] * 7 + [(0, C.GET_REQ)])
    assert verdicts[:7].count(REJECT) == 2
    assert verdicts[7] == SERVE  # GET parked fine behind discovery


# -- admission: CoDel --------------------------------------------------------

def test_codel_sheds_standing_queue_but_never_frees():
    cfg = OverloadConfig(
        policy="codel", workers=1, queue_cap=10,
        codel_target_ns=10_000, codel_interval_ns=20_000,
    )
    # Service time 15us > target: sojourn stays above target, so once a
    # full interval elapses the dispatcher starts shedding new-flow
    # waiters — but the queued release must still be served.
    arrivals = [(0, C.GET_REQ)] * 7 + [(0, C.RELEASE_REQ)]
    ctrl, verdicts = _drive(cfg, arrivals, service_ns=15_000)
    assert SHED in verdicts[:7]
    assert verdicts[7] == SERVE  # release-class is CoDel-exempt
    assert ctrl.offered == 8
    assert ctrl.admitted + ctrl.rejected + ctrl.shed == 8


def test_fail_fast_never_sheds():
    cfg = OverloadConfig(policy="fail-fast", workers=1, queue_cap=10)
    ctrl, verdicts = _drive(cfg, [(0, C.GET_REQ)] * 8, service_ns=50_000)
    assert SHED not in verdicts
    assert ctrl.shed == 0


# -- admission: crash semantics ---------------------------------------------

def test_fail_all_aborts_parked_waiters():
    eng = Engine()
    cfg = OverloadConfig(policy="fail-fast", workers=1, queue_cap=8)
    ctrl = AdmissionController(cfg, eng, "t")
    outcomes = []

    def req(i):
        try:
            verdict = yield from ctrl.admit(C.GET_REQ)
            outcomes.append(verdict)
            if verdict == SERVE:
                yield eng.sleep(50_000)
                ctrl.release()
        except RuntimeError:
            outcomes.append("aborted")

    def killer():
        yield eng.sleep(5_000)
        ctrl.fail_all(RuntimeError("enclave crashed"))

    for i in range(4):
        eng.spawn(req(i), name=f"req{i}")
    eng.spawn(killer(), name="killer")
    eng.run()
    assert outcomes.count("aborted") == 3
    assert ctrl.aborted == 3 and ctrl.waiting == 0
    assert ctrl.offered == ctrl.admitted + ctrl.rejected + ctrl.shed + ctrl.aborted


# -- deterministic hints -----------------------------------------------------

def test_retry_hints_are_seeded_and_deterministic():
    eng = Engine()
    cfg = OverloadConfig(seed=7)
    a = AdmissionController(cfg, eng, "ns")
    b = AdmissionController(cfg, eng, "ns")
    seq_a = [a.retry_hint_ns() for _ in range(8)]
    seq_b = [b.retry_hint_ns() for _ in range(8)]
    assert seq_a == seq_b
    other = AdmissionController(OverloadConfig(seed=8), eng, "ns")
    assert [other.retry_hint_ns() for _ in range(8)] != seq_a
    assert all(h >= cfg.retry_after_ns for h in seq_a)


# -- retry budget ------------------------------------------------------------

def test_retry_budget_spends_and_refills_per_window():
    clk = Clock()
    cfg = OverloadConfig(retry_budget=2, retry_budget_window_ns=1_000)
    budget = RetryBudget(cfg, clk)
    assert budget.try_spend()
    assert budget.try_spend()
    assert not budget.try_spend()
    assert budget.exhausted == 1
    clk.now = 1_000  # a new window refills the bucket # repro: noqa[REP006] reason=test clock stub for clock-only components (breaker/budget); no engine events involved
    assert budget.try_spend()


# -- circuit breaker ---------------------------------------------------------

def test_breaker_state_machine():
    clk = Clock()
    cfg = OverloadConfig(breaker_threshold=3, breaker_open_ns=100)
    breaker = CircuitBreaker(cfg, clk, "t")
    assert breaker.allow() and breaker.state == CLOSED
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == CLOSED  # below threshold
    breaker.record_failure()
    assert breaker.state == OPEN
    assert not breaker.allow()  # fast fail while open
    assert breaker.retry_after_ns() == 100
    clk.now = 100  # repro: noqa[REP006] reason=test clock stub for clock-only components (breaker/budget); no engine events involved
    assert breaker.allow()  # half-open: exactly one probe
    assert breaker.state == HALF_OPEN
    assert not breaker.allow()
    breaker.record_failure()  # probe failed: re-open
    assert breaker.state == OPEN
    clk.now = 250  # repro: noqa[REP006] reason=test clock stub for clock-only components (breaker/budget); no engine events involved
    assert breaker.allow()
    breaker.record_success()  # probe succeeded: closed
    assert breaker.state == CLOSED
    assert breaker.opens == 2


def test_breaker_success_resets_failure_streak():
    clk = Clock()
    cfg = OverloadConfig(breaker_threshold=3, breaker_open_ns=100)
    breaker = CircuitBreaker(cfg, clk, "t")
    breaker.record_failure()
    breaker.record_failure()
    breaker.record_success()  # streak broken — only *consecutive* count
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == CLOSED


# -- degradation ladder ------------------------------------------------------

def _fake_module(eng, name="ns"):
    return types.SimpleNamespace(
        engine=eng, enclave=types.SimpleNamespace(name=name), overload=None
    )


def test_refresh_level_follows_queue_fill():
    eng = Engine()
    cfg = OverloadConfig(workers=1, queue_cap=9,
                         shed_discovery_fill=0.5, defer_gc_fill=0.8)
    ov = ModuleOverload(cfg, _fake_module(eng))
    assert ov.refresh_level() == 0
    ov.controller.in_service = 5  # fill 5/10
    assert ov.refresh_level() == 1
    ov.controller.in_service = 8  # fill 8/10
    assert ov.refresh_level() == 2
    ov.controller.in_service = 0
    assert ov.refresh_level() == 0
    assert ov.level_transitions == 3


def test_module_jitter_is_seeded_per_enclave():
    eng = Engine()
    cfg = OverloadConfig(seed=3, retry_jitter_ns=10_000)
    a = ModuleOverload(cfg, _fake_module(eng, "kitten0"))
    b = ModuleOverload(cfg, _fake_module(eng, "kitten0"))
    c = ModuleOverload(cfg, _fake_module(eng, "kitten1"))
    seq = [a.jitter_ns() for _ in range(8)]
    assert seq == [b.jitter_ns() for _ in range(8)]
    assert seq != [c.jitter_ns() for _ in range(8)]


# -- arm / disarm lifecycle --------------------------------------------------

def test_arm_disarm_lifecycle(basic):
    modules = basic["modules"]
    assert all(m.overload is None for m in modules.values())
    armed = arm_overload(modules, OverloadConfig(seed=0))
    assert sorted(armed) == sorted(modules)
    assert all(m.overload is armed[n] for n, m in modules.items())
    with pytest.raises(ValueError):
        arm_overload(modules, OverloadConfig(seed=0))  # double-arm
    totals = admission_totals(modules)
    assert totals["offered"] == 0 and totals["admitted"] == 0
    disarm_overload(modules)
    assert all(m.overload is None for m in modules.values())
    assert admission_totals(modules) == {}


def test_admission_totals_sums_across_modules(basic):
    modules = basic["modules"]
    arm_overload(modules, OverloadConfig(seed=0))
    names = sorted(modules)
    modules[names[0]].overload.controller.count_served_direct()
    modules[names[1]].overload.controller.count_shed_direct()
    totals = admission_totals(modules)
    assert totals["offered"] == 2
    assert totals["admitted"] == 1 and totals["shed"] == 1
