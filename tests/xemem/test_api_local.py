"""Tests for the XPMEM API within a single enclave (local fast paths)."""

import pytest

from repro.hw.costs import MB, PAGE_4K
from repro.xemem import Permit, XememError, XpmemApi
from repro.xemem.ids import PermissionError_


def linux_pair(rig):
    kernel = rig["linux"].kernel
    exporter = kernel.create_process("exporter", core_id=1)
    attacher = kernel.create_process("attacher", core_id=2)
    return kernel, exporter, attacher


def test_make_get_attach_detach_linux_local(basic):
    eng = basic["engine"]
    kernel, exporter, attacher = linux_pair(basic)

    def run():
        region = yield from kernel.mmap_anonymous(exporter, 1 * MB)
        api_x = XpmemApi(exporter)
        api_a = XpmemApi(attacher)
        segid = yield from api_x.xpmem_make(region.start, 1 * MB)
        apid = yield from api_a.xpmem_get(segid)
        att = yield from api_a.xpmem_attach(apid)
        # zero-copy: exporter writes, attacher reads
        api_x.segment(segid).view().write(100, b"hello local")
        got = att.read(100, 11)
        yield from api_a.xpmem_detach(att)
        yield from api_a.xpmem_release(apid)
        yield from api_x.xpmem_remove(segid)
        return got, att.kind

    got, kind = eng.run_process(run())
    assert got == b"hello local"
    assert kind == "linux-lazy"


def test_linux_local_attach_faults_on_touch(basic):
    """Fig. 8(b)'s mechanism: local attachments demand-page."""
    eng = basic["engine"]
    kernel, exporter, attacher = linux_pair(basic)

    def run():
        region = yield from kernel.mmap_anonymous(exporter, 64 * PAGE_4K)
        api_x, api_a = XpmemApi(exporter), XpmemApi(attacher)
        segid = yield from api_x.xpmem_make(region.start, 64 * PAGE_4K)
        apid = yield from api_a.xpmem_get(segid)
        att = yield from api_a.xpmem_attach(apid)
        before = kernel.fault_count
        faults = yield from kernel.touch_pages(attacher, att.vaddr, att.npages)
        return faults, kernel.fault_count - before

    faults, delta = eng.run_process(run())
    assert faults == 64
    assert delta == 64


def test_kitten_local_attach_uses_smartmap(basic):
    eng = basic["engine"]
    kitten = basic["cokernels"][0].kernel
    donor = kitten.create_process("donor")
    attacher = kitten.create_process("att")
    heap = kitten.heap_region(donor)

    def run():
        api_d, api_a = XpmemApi(donor), XpmemApi(attacher)
        segid = yield from api_d.xpmem_make(heap.start, heap.nbytes)
        apid = yield from api_a.xpmem_get(segid)
        att = yield from api_a.xpmem_attach(apid)
        # data flows both ways through the alias
        att.write(0, b"from attacher")
        got = api_d.segment(segid).view().read(0, 13)
        # SMARTMAP address is in the donor's PML4 slot
        assert att.vaddr == kitten.smartmap_address(donor, heap.start)
        assert attacher.aspace.table.translate(att.vaddr)
        yield from api_a.xpmem_detach(att)
        return got, att.kind

    got, kind = eng.run_process(run())
    assert got == b"from attacher"
    assert kind == "smartmap"


def test_smartmap_refcount_two_attachments(basic):
    eng = basic["engine"]
    kitten = basic["cokernels"][0].kernel
    donor = kitten.create_process("donor")
    attacher = kitten.create_process("att")
    heap = kitten.heap_region(donor)

    def run():
        api_d, api_a = XpmemApi(donor), XpmemApi(attacher)
        s1 = yield from api_d.xpmem_make(heap.start, 16 * PAGE_4K)
        s2 = yield from api_d.xpmem_make(heap.start + 32 * PAGE_4K, 16 * PAGE_4K)
        a1 = yield from api_a.xpmem_get(s1)
        a2 = yield from api_a.xpmem_get(s2)
        att1 = yield from api_a.xpmem_attach(a1)
        att2 = yield from api_a.xpmem_attach(a2)
        yield from api_a.xpmem_detach(att1)
        # second attachment still translates after the first detach
        assert attacher.aspace.table.translate(att2.vaddr)
        yield from api_a.xpmem_detach(att2)
        return True

    assert eng.run_process(run())


def test_permission_denied_on_restrictive_permit(basic):
    eng = basic["engine"]
    kernel, exporter, attacher = linux_pair(basic)

    def run():
        region = yield from kernel.mmap_anonymous(exporter, 16 * PAGE_4K)
        api_x, api_a = XpmemApi(exporter), XpmemApi(attacher)
        segid = yield from api_x.xpmem_make(
            region.start, 16 * PAGE_4K, permit=Permit(mode=0o600)
        )
        with pytest.raises(PermissionError_):
            yield from api_a.xpmem_get(segid)
        # read-only permit rejects write access but allows read
        segid_ro = yield from api_x.xpmem_make(
            region.start + 8 * PAGE_4K, 4 * PAGE_4K, permit=Permit(mode=0o644)
        )
        with pytest.raises(PermissionError_):
            yield from api_a.xpmem_get(segid_ro, write=True)
        apid = yield from api_a.xpmem_get(segid_ro, write=False)
        return apid

    assert eng.run_process(run()) is not None


def test_make_validates_alignment(basic):
    eng = basic["engine"]
    kernel, exporter, _ = linux_pair(basic)

    def run():
        api = XpmemApi(exporter)
        with pytest.raises(XememError):
            yield from api.xpmem_make(0x1001, PAGE_4K)
        with pytest.raises(XememError):
            yield from api.xpmem_make(0x1000, 0)
        return True

    assert eng.run_process(run())


def test_attach_window_offset_and_size(basic):
    eng = basic["engine"]
    kernel, exporter, attacher = linux_pair(basic)

    def run():
        region = yield from kernel.mmap_anonymous(exporter, 64 * PAGE_4K)
        yield from kernel.touch_pages(exporter, region.start, 64)
        api_x, api_a = XpmemApi(exporter), XpmemApi(attacher)
        segid = yield from api_x.xpmem_make(region.start, 64 * PAGE_4K)
        apid = yield from api_a.xpmem_get(segid)
        att = yield from api_a.xpmem_attach(apid, offset=8 * PAGE_4K, size=4 * PAGE_4K)
        assert att.npages == 4
        api_x.segment(segid).view().write(8 * PAGE_4K + 5, b"window")
        got = att.read(5, 6)
        with pytest.raises(XememError):
            yield from api_a.xpmem_attach(apid, offset=62 * PAGE_4K, size=16 * PAGE_4K)
        with pytest.raises(XememError):
            yield from api_a.xpmem_attach(apid, offset=3)  # unaligned
        return got

    assert eng.run_process(run()) == b"window"


def test_remove_then_get_fails(basic):
    eng = basic["engine"]
    kernel, exporter, attacher = linux_pair(basic)

    def run():
        region = yield from kernel.mmap_anonymous(exporter, 4 * PAGE_4K)
        api_x, api_a = XpmemApi(exporter), XpmemApi(attacher)
        segid = yield from api_x.xpmem_make(region.start, 4 * PAGE_4K)
        yield from api_x.xpmem_remove(segid)
        with pytest.raises(XememError):
            yield from api_a.xpmem_get(segid)
        # double remove also fails
        with pytest.raises(XememError):
            yield from api_x.xpmem_remove(segid)
        return True

    assert eng.run_process(run())


def test_double_detach_rejected(basic):
    eng = basic["engine"]
    kernel, exporter, attacher = linux_pair(basic)

    def run():
        region = yield from kernel.mmap_anonymous(exporter, 4 * PAGE_4K)
        api_x, api_a = XpmemApi(exporter), XpmemApi(attacher)
        segid = yield from api_x.xpmem_make(region.start, 4 * PAGE_4K)
        apid = yield from api_a.xpmem_get(segid)
        att = yield from api_a.xpmem_attach(apid)
        yield from api_a.xpmem_detach(att)
        with pytest.raises(XememError):
            yield from api_a.xpmem_detach(att)
        return True

    assert eng.run_process(run())


def test_release_refused_while_attached(basic):
    """XPMEM semantics: detach before release."""
    eng = basic["engine"]
    kernel, exporter, attacher = linux_pair(basic)

    def run():
        region = yield from kernel.mmap_anonymous(exporter, 4 * PAGE_4K)
        api_x, api_a = XpmemApi(exporter), XpmemApi(attacher)
        segid = yield from api_x.xpmem_make(region.start, 4 * PAGE_4K)
        apid = yield from api_a.xpmem_get(segid)
        att = yield from api_a.xpmem_attach(apid)
        with pytest.raises(XememError, match="live attachment"):
            yield from api_a.xpmem_release(apid)
        yield from api_a.xpmem_detach(att)
        yield from api_a.xpmem_release(apid)  # now fine
        return True

    assert eng.run_process(run())


def test_grant_bookkeeping(basic):
    eng = basic["engine"]
    kernel, exporter, attacher = linux_pair(basic)

    def run():
        region = yield from kernel.mmap_anonymous(exporter, 4 * PAGE_4K)
        api_x, api_a = XpmemApi(exporter), XpmemApi(attacher)
        segid = yield from api_x.xpmem_make(region.start, 4 * PAGE_4K)
        seg = api_x.segment(segid)
        apid = yield from api_a.xpmem_get(segid)
        assert seg.grants_out == 1
        yield from api_a.xpmem_release(apid)
        assert seg.grants_out == 0
        return True

    assert eng.run_process(run())
