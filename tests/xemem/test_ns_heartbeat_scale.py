"""Regression: the name server's lease sweep must be O(expired), not
O(tracked).

The expiry index (a lazy min-heap over (stamp, enclave_id)) exists so a
name server tracking tens of thousands of enclaves pays only for the
leases that actually lapsed. These tests pin the semantics the index
must keep — repeatable queries, supersession by newer beacons, zombie
rejection — and the scaling shape itself, by counting heap pops via a
probe subclass at 10k tracked enclaves."""

from repro.xemem.nameserver import NameServer

LEASE_NS = 1_000


def tracked_ns(n, stamp_ns=0):
    ns = NameServer()
    for eid in range(1, n + 1):
        ns.note_heartbeat(eid, stamp_ns)
    return ns


def test_expired_is_sorted_and_repeatable():
    ns = tracked_ns(50)
    ns.note_heartbeat(7, 5_000)   # fresh beacon supersedes the stamp-0 one
    ns.note_heartbeat(13, 5_000)
    expired = ns.expired_enclaves(now_ns=5_000, lease_ns=LEASE_NS)
    assert expired == sorted(set(range(1, 51)) - {7, 13})
    # the query must be repeatable until gc_enclave retires the losers
    assert ns.expired_enclaves(now_ns=5_000, lease_ns=LEASE_NS) == expired
    for eid in expired:
        ns.gc_enclave(eid)
    assert ns.expired_enclaves(now_ns=5_000, lease_ns=LEASE_NS) == []


def test_zombie_beacons_do_not_resurrect():
    ns = tracked_ns(3)
    ns.gc_enclave(2)
    ns.note_heartbeat(2, 9_000)  # a beacon from an already-GC'd enclave
    assert 2 not in ns.last_heartbeat_ns
    assert ns.expired_enclaves(now_ns=20_000, lease_ns=LEASE_NS) == [1, 3]


class PopCountingNameServer(NameServer):
    """Probe: counts entries the sweep actually pops off the index."""

    def __init__(self):
        super().__init__()
        self.pops = 0

    def expired_enclaves(self, now_ns, lease_ns):
        heap = self._expiry_heap
        before = len(heap)
        result = super().expired_enclaves(now_ns, lease_ns)
        # re-pushed survivors are exactly the expired set
        self.pops += before - len(heap) + len(result)
        return result


def test_sweep_cost_is_o_expired_at_10k_enclaves():
    n = 10_000
    ns = PopCountingNameServer()
    for eid in range(1, n + 1):
        ns.note_heartbeat(eid, 0)
    # everyone re-beacons except 5 victims: 5 fresh stamps supersede
    victims = [17, 404, 4_096, 7_777, 9_999]
    for eid in range(1, n + 1):
        if eid not in victims:
            ns.note_heartbeat(eid, 10_000)

    expired = ns.expired_enclaves(now_ns=10_000, lease_ns=LEASE_NS)
    assert expired == victims
    # the sweep popped the stale stamp-0 generation (once, lazily) plus
    # the victims — never the 10k live stamp-10000 entries
    assert ns.pops <= n + len(victims)
    live_entries = sum(1 for stamp, _ in ns._expiry_heap if stamp == 10_000)
    assert live_entries == n - len(victims)

    # a second sweep is O(expired) outright: the stale generation is gone
    ns.pops = 0
    assert ns.expired_enclaves(now_ns=10_000, lease_ns=LEASE_NS) == victims
    assert ns.pops == len(victims)

    # GC of one victim touches only what it owned
    for eid in victims:
        ns.gc_enclave(eid)
    ns.pops = 0
    assert ns.expired_enclaves(now_ns=10_000, lease_ns=LEASE_NS) == []
    assert ns.pops <= 2 * len(victims)  # at most the victims' dead entries


def test_restart_grace_rebuilds_the_index():
    ns = tracked_ns(100)
    ns.restart_grace(now_ns=50_000)
    # nothing expires against the recovery stamp
    assert ns.expired_enclaves(now_ns=50_500, lease_ns=LEASE_NS) == []
    # the rebuilt index is exactly one entry per tracked enclave
    assert len(ns._expiry_heap) == 100
    assert ns.expired_enclaves(now_ns=60_000, lease_ns=LEASE_NS) == list(
        range(1, 101)
    )


def test_gc_uses_owner_index():
    ns = NameServer()
    for eid in (1, 2):
        for k in range(3):
            ns.alloc_segid(eid, npages=1, name=f"seg/{eid}/{k}")
    assert len(ns.segids_of(1)) == 3
    purged = ns.gc_enclave(1)
    assert len(purged) == 3
    assert ns.segids_of(1) == []
    assert len(ns.segids_of(2)) == 3
    assert ns.live_segments == 3
