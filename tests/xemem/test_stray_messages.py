"""Duplicate/late protocol messages must be dropped, never raised.

Retries (and duplicating channels) mean a module can receive an ack or
a response whose waiter is long gone: the token was popped when the
first copy arrived, or the requester's deadline fired and it moved on.
Every such stray used to KeyError or re-trigger a completed event.
"""

from repro import obs
from repro.xemem import commands as C

from tests.xemem.conftest import build_system


def _run_handle(rig, module, msg):
    rig["engine"].run_process(module._handle(msg, None))


def test_stray_response_dropped():
    rig = build_system(num_cokernels=1)
    module = rig["cokernels"][0].module
    with obs.observing(trace=False, metrics=True, engine=False):
        stray = C.make_command(
            C.SEGID_ASSIGNED, 0, module.my_id, reply_to="gone:99", segid=4096
        )
        _run_handle(rig, module, stray)
        # twice in a row: the second copy must be just as harmless
        _run_handle(rig, module, stray)
        assert obs.get().metrics.counter("xemem.msgs.stray_dropped").value == 2
    assert module._pending == {}


def test_duplicate_ping_ack_dropped():
    rig = build_system(num_cokernels=1)
    module = rig["cokernels"][0].module
    assert module._ping_pending == {}  # discovery done, all tokens popped
    with obs.observing(trace=False, metrics=True, engine=False):
        late_ack = C.make_command(
            C.PING_NS_PATH_ACK, None, None, token="stale-token"
        )
        _run_handle(rig, module, late_ack)
        assert obs.get().metrics.counter("xemem.msgs.stray_dropped").value == 1


def test_duplicate_enclave_id_assignment_dropped():
    """A relay whose ``_forwarded`` entry was already consumed drops the
    second copy of the assignment instead of KeyError-ing."""
    rig = build_system(num_cokernels=2)
    relay = rig["cokernels"][0].module
    with obs.observing(trace=False, metrics=True, engine=False):
        dup = C.make_command(
            C.ENCLAVE_ID_ASSIGNED, 0, None, req_id="gone:1", enclave_id=9
        )
        _run_handle(rig, relay, dup)
        assert obs.get().metrics.counter("xemem.msgs.stray_dropped").value == 1
