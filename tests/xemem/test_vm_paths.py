"""Integration tests: attachments crossing the Palacios VM boundary."""

import numpy as np
import pytest

from repro.hw.costs import MB, PAGE_4K
from repro.xemem import XpmemApi

from tests.xemem.conftest import build_system


def test_guest_attaches_to_kitten_export(with_vm_on_linux):
    """Fig. 4(a) end to end: Kitten exports, the Linux VM guest attaches."""
    rig = with_vm_on_linux
    eng = rig["engine"]
    kitten = rig["cokernels"][0].kernel
    guest = rig["vm"].kernel
    vmm = guest.vmm
    kp = kitten.create_process("sim")
    gp = guest.create_process("analytics")
    heap = kitten.heap_region(kp)
    entries_before = vmm.memmap.num_entries

    def run():
        api_k, api_g = XpmemApi(kp), XpmemApi(gp)
        segid = yield from api_k.xpmem_make(heap.start, 1 * MB)
        apid = yield from api_g.xpmem_get(segid)
        att = yield from api_g.xpmem_attach(apid)
        # zero-copy across the VM boundary
        api_k.segment(segid).view().write(0, b"host to guest")
        got = att.read(0, 13)
        att.write(50, b"guest to host")
        back = api_k.segment(segid).view().read(50, 13)
        return att, got, back

    att, got, back = eng.run_process(run())
    assert got == b"host to guest"
    assert back == b"guest to host"
    # local pfns are guest-physical, above VM RAM
    assert int(att.local_pfns[0]) >= vmm.ram_frames
    # the memory map grew (Kitten heap frames are contiguous, so few entries)
    assert vmm.memmap.num_entries > entries_before
    assert len(vmm.insert_work_log) == 1


def test_guest_detach_shrinks_memory_map(with_vm_on_linux):
    rig = with_vm_on_linux
    eng = rig["engine"]
    kitten = rig["cokernels"][0].kernel
    guest = rig["vm"].kernel
    vmm = guest.vmm
    kp = kitten.create_process("sim")
    gp = guest.create_process("analytics")
    heap = kitten.heap_region(kp)
    entries_before = vmm.memmap.num_entries

    def run():
        api_k, api_g = XpmemApi(kp), XpmemApi(gp)
        segid = yield from api_k.xpmem_make(heap.start, 64 * PAGE_4K)
        apid = yield from api_g.xpmem_get(segid)
        att = yield from api_g.xpmem_attach(apid)
        yield from api_g.xpmem_detach(att)
        return att

    att = eng.run_process(run())
    assert vmm.memmap.num_entries == entries_before
    assert gp.aspace.find_region(att.vaddr) is None


def test_kitten_attaches_to_guest_export(with_vm_on_linux):
    """Fig. 4(b) end to end: VM guest exports, native Kitten attaches."""
    rig = with_vm_on_linux
    eng = rig["engine"]
    kitten = rig["cokernels"][0].kernel
    guest = rig["vm"].kernel
    kp = kitten.create_process("att")
    gp = guest.create_process("exp")

    def run():
        region = yield from guest.mmap_anonymous(gp, 1 * MB)
        yield from guest.touch_pages(gp, region.start, region.npages)
        api_g, api_k = XpmemApi(gp), XpmemApi(kp)
        segid = yield from api_g.xpmem_make(region.start, 1 * MB)
        apid = yield from api_k.xpmem_get(segid)
        att = yield from api_k.xpmem_attach(apid)
        api_g.segment(segid).view().write(0, b"vm data")
        got = att.read(0, 7)
        # the kitten's mapping references host frames owned by the VM's
        # host enclave (Linux), translated out of guest-physical space
        pfns = kp.aspace.table.translate_range(att.vaddr, 4)
        assert all(rig["linux"].kernel.owns_pfn(int(p)) for p in pfns)
        return got

    assert eng.run_process(run()) == b"vm data"


def test_vm_on_kitten_host_full_path(with_vm_on_kitten):
    """VM on an isolated Kitten co-kernel host (Table 3 row 4): attach
    traffic crosses both the Pisces and the Palacios channels."""
    rig = with_vm_on_kitten
    eng = rig["engine"]
    kitten = rig["cokernels"][0].kernel
    guest = rig["vm"].kernel
    linux = rig["linux"].kernel
    lp = linux.create_process("exporter", core_id=1)
    gp = guest.create_process("attacher")

    def run():
        region = yield from linux.mmap_anonymous(lp, 256 * PAGE_4K)
        api_l, api_g = XpmemApi(lp), XpmemApi(gp)
        segid = yield from api_l.xpmem_make(region.start, 256 * PAGE_4K)
        apid = yield from api_g.xpmem_get(segid)
        att = yield from api_g.xpmem_attach(apid)
        api_l.segment(segid).view().write(1234, b"two hops")
        return att.read(1234, 8)

    assert eng.run_process(run()) == b"two hops"


def test_guest_to_guest_data_integrity_checksum(with_vm_on_linux):
    """Bulk pattern integrity through the VM boundary."""
    rig = with_vm_on_linux
    eng = rig["engine"]
    kitten = rig["cokernels"][0].kernel
    guest = rig["vm"].kernel
    kp = kitten.create_process("sim")
    gp = guest.create_process("analytics")
    heap = kitten.heap_region(kp)

    def run():
        api_k, api_g = XpmemApi(kp), XpmemApi(gp)
        segid = yield from api_k.xpmem_make(heap.start, 128 * PAGE_4K)
        apid = yield from api_g.xpmem_get(segid)
        att = yield from api_g.xpmem_attach(apid)
        return api_k.segment(segid).view(), att

    exp_view, att = eng.run_process(run())
    rng = np.random.default_rng(7)
    data = rng.integers(0, 256, size=128 * PAGE_4K, dtype=np.uint8).tobytes()
    exp_view.write(0, data)
    assert att.view.checksum() == exp_view.checksum()
    assert att.read(0, len(data)) == data


def test_guest_attach_records_rb_tree_work(with_vm_on_linux):
    """Scattered host frames inflate the guest memory map (Table 2)."""
    rig = with_vm_on_linux
    eng = rig["engine"]
    linux = rig["linux"].kernel
    guest = rig["vm"].kernel
    vmm = guest.vmm
    lp = linux.create_process("exp", core_id=1)
    gp = guest.create_process("att")
    entries_before = vmm.memmap.num_entries

    def run():
        # export a *scattered* Linux region: fragment the allocator first
        pfns = linux.alloc_pfns(256, scattered=True)
        region_va = lp.aspace.find_free(256)
        from repro.kernels.addrspace import RegionKind

        region = lp.aspace.add_region(region_va, 256, RegionKind.EAGER, "frag")
        lp.aspace.map_region_pfns(region, pfns)
        api_l, api_g = XpmemApi(lp), XpmemApi(gp)
        segid = yield from api_l.xpmem_make(region_va, 256 * PAGE_4K)
        apid = yield from api_g.xpmem_get(segid)
        att = yield from api_g.xpmem_attach(apid)
        return att

    eng.run_process(run())
    # one memory-map entry per scattered host frame
    assert vmm.memmap.num_entries == entries_before + 256
    assert vmm.insert_work_log[-1] > 0
