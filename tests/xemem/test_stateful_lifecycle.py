"""Stateful property test: dynamic partitioning under random operation.

Hypothesis interleaves enclave hot-adds, departures, exports, and
cross-enclave attach/detach cycles, checking after every step that the
name server's view, the routing tables, and the live mappings stay
consistent. This is the §3.2 "dynamic partitions" vision under stress.
"""

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.hw.costs import MB, PAGE_4K
from repro.xemem import XememModule, XpmemApi

from tests.xemem.conftest import build_system

MAX_DYNAMIC = 3  # hot-addable enclaves (cores 15, 16, 17)


class LifecycleMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.rig = build_system(num_cokernels=1)
        self.eng = self.rig["engine"]
        self.system = self.rig["system"]
        self.pisces = self.rig["pisces"]
        self.linux = self.rig["linux"]
        self.ns = self.linux.module.nameserver
        self.ns_base = self.ns.live_segments
        # model: name -> {"enclave", "proc", "api", "exports": {segid: grants}}
        self.live = {}
        self.added = 0
        self._attach_seq = 0
        # attachments: key -> (api, attachment, owner_name, apid)
        self.attachments = {}
        self._register("kitten0", self.rig["cokernels"][0])

    def _register(self, name, enclave):
        proc = enclave.kernel.create_process(f"{name}-app")
        self.live[name] = {
            "enclave": enclave,
            "proc": proc,
            "api": XpmemApi(proc),
            "exports": {},
            "slot": 0,
        }

    def _run(self, gen):
        return self.eng.run_process(gen)

    # ------------------------------------------------------------------ rules

    @precondition(lambda self: self.added < MAX_DYNAMIC)
    @rule()
    def hot_add(self):
        name = f"late{self.added}"
        enclave = self.pisces.boot_cokernel(
            core_ids=[15 + self.added], mem_bytes=64 * MB, zone_id=1, name=name
        )
        XememModule(enclave)
        self.system.add_and_discover(enclave)
        self.added += 1
        self._register(name, enclave)

    @precondition(lambda self: bool(self.live))
    @rule(data=st.data())
    def export(self, data):
        name = data.draw(st.sampled_from(sorted(self.live)))
        cell = self.live[name]
        if cell["slot"] >= 40:
            return
        heap = cell["enclave"].kernel.heap_region(cell["proc"])
        vaddr = heap.start + cell["slot"] * 4 * PAGE_4K
        cell["slot"] += 1
        segid = self._run(cell["api"].xpmem_make(vaddr, 4 * PAGE_4K))
        cell["exports"][segid] = 0

    @precondition(lambda self: any(c["exports"] for c in self.live.values()))
    @rule(data=st.data())
    def attach_from_linux(self, data):
        owner_name = data.draw(st.sampled_from(
            sorted(n for n, c in self.live.items() if c["exports"])
        ))
        cell = self.live[owner_name]
        segid = data.draw(st.sampled_from(sorted(cell["exports"], key=int)))
        self._attach_seq += 1
        proc = self.linux.kernel.create_process(
            f"att{self._attach_seq}", core_id=1 + (self._attach_seq % 7)
        )
        api = XpmemApi(proc)

        def run():
            apid = yield from api.xpmem_get(segid)
            att = yield from api.xpmem_attach(apid)
            return apid, att

        apid, att = self._run(run())
        cell["exports"][segid] += 1
        self.attachments[self._attach_seq] = (api, att, owner_name, apid, segid)

    @precondition(lambda self: bool(self.attachments))
    @rule(data=st.data())
    def detach_and_release(self, data):
        key = data.draw(st.sampled_from(sorted(self.attachments)))
        api, att, owner_name, apid, segid = self.attachments.pop(key)

        def run():
            yield from api.xpmem_detach(att)
            yield from api.xpmem_release(apid)

        self._run(run())
        cell = self.live.get(owner_name)
        if cell is not None and segid in cell["exports"]:
            cell["exports"][segid] -= 1

    @precondition(lambda self: len(self.live) >= 2 and any(
        not any(owner == n for _a, _t, owner, _ap, _s in self.attachments.values())
        for n in self.live
    ))
    @rule(data=st.data())
    def depart(self, data):
        # only enclaves with no live inbound attachments may leave safely
        # (and at least one co-kernel always stays, so the machine never
        # reaches a dead state)
        candidates = sorted(
            n for n in self.live
            if not any(owner == n for _a, _t, owner, _ap, _s in self.attachments.values())
        )
        if len(candidates) == len(self.live):
            candidates = candidates[:-1] or candidates
        name = data.draw(st.sampled_from(candidates))
        cell = self.live.pop(name)
        # grants without attachments still block departure; force is the
        # documented escape hatch and keeps the state machine simple
        self.system.shutdown_enclave(cell["enclave"], force=True)

    # -------------------------------------------------------------- invariants

    @invariant()
    def ns_counts_match_model(self):
        if not hasattr(self, "ns"):
            return
        expected = sum(len(c["exports"]) for c in self.live.values())
        assert self.ns.live_segments - self.ns_base == expected

    @invariant()
    def routes_only_to_live_enclaves(self):
        if not hasattr(self, "ns"):
            return
        live_ids = {c["enclave"].enclave_id for c in self.live.values()}
        live_ids.add(0)
        for dst in self.linux.module.routing.routes:
            assert dst in live_ids

    @invariant()
    def live_attachments_still_read(self):
        if not hasattr(self, "ns"):
            return
        for _api, att, owner, _apid, _segid in self.attachments.values():
            assert att.read(0, 1) is not None


TestLifecycle = LifecycleMachine.TestCase
TestLifecycle.settings = settings(
    max_examples=10, stateful_step_count=20, deadline=None
)
