"""Tests for the strict XPMEM C-API compatibility shim."""

import errno

import pytest

from repro.hw.costs import PAGE_4K
from repro.xemem.compat import (
    XPMEM_CURRENT_VERSION,
    XPMEM_PERMIT_MODE,
    XPMEM_RDONLY,
    XPMEM_RDWR,
    XpmemCompat,
    xpmem_version,
)


def test_version():
    assert xpmem_version() == XPMEM_CURRENT_VERSION
    assert XPMEM_CURRENT_VERSION >> 16 == 2


def test_full_c_style_lifecycle(basic):
    """An unmodified XPMEM application's call sequence, cross-enclave."""
    eng = basic["engine"]
    kitten = basic["cokernels"][0].kernel
    linux = basic["linux"].kernel
    kp = kitten.create_process("exp")
    lp = linux.create_process("att", core_id=2)
    heap = kitten.heap_region(kp)
    x = XpmemCompat(kp)
    a = XpmemCompat(lp)

    def run():
        segid = yield from x.xpmem_make(
            heap.start, 8 * PAGE_4K, XPMEM_PERMIT_MODE, 0o666
        )
        assert segid > 0
        apid = yield from a.xpmem_get(segid, XPMEM_RDWR, XPMEM_PERMIT_MODE, 0)
        assert apid > 0
        vaddr = yield from a.xpmem_attach(apid, 0, 8 * PAGE_4K)
        assert vaddr > 0
        a.deref(vaddr).write(0, b"compat")
        got = a.deref(vaddr).read(0, 6)
        assert (yield from a.xpmem_detach(vaddr)) == 0
        assert (yield from a.xpmem_release(apid)) == 0
        assert (yield from x.xpmem_remove(segid)) == 0
        return got

    assert eng.run_process(run()) == b"compat"


def test_c_style_error_codes(basic):
    eng = basic["engine"]
    linux = basic["linux"].kernel
    lp = linux.create_process("p", core_id=1)
    c = XpmemCompat(lp)

    def run():
        # bad permit type
        assert (yield from c.xpmem_make(0x1000, 4096, 0x2, 0o666)) == -errno.EINVAL
        # bad permit value
        assert (yield from c.xpmem_make(0x1000, 4096, XPMEM_PERMIT_MODE, 0o7777)) \
            == -errno.EINVAL
        # unaligned make
        assert (yield from c.xpmem_make(0x1001, 4096, XPMEM_PERMIT_MODE, 0o666)) \
            == -errno.EINVAL
        # get on a nonexistent segid
        assert (yield from c.xpmem_get(0x999999, XPMEM_RDWR, XPMEM_PERMIT_MODE, 0)) \
            == -errno.ENOENT
        # bad flags
        assert (yield from c.xpmem_get(0x1000, 0x4, XPMEM_PERMIT_MODE, 0)) \
            == -errno.EINVAL
        # detach of an address never attached
        assert (yield from c.xpmem_detach(0xDEAD000)) == -errno.EINVAL
        # release of a bogus apid
        assert (yield from c.xpmem_release(12345)) == -errno.EINVAL
        return True

    assert eng.run_process(run())


def test_permission_denied_maps_to_eacces(basic):
    eng = basic["engine"]
    kitten = basic["cokernels"][0].kernel
    linux = basic["linux"].kernel
    kp = kitten.create_process("exp")
    lp = linux.create_process("att", core_id=2)
    heap = kitten.heap_region(kp)
    x, a = XpmemCompat(kp), XpmemCompat(lp)

    def run():
        segid = yield from x.xpmem_make(
            heap.start, PAGE_4K, XPMEM_PERMIT_MODE, 0o600
        )
        got = yield from a.xpmem_get(segid, XPMEM_RDWR, XPMEM_PERMIT_MODE, 0)
        assert got == -errno.EACCES
        # read-only permit: RDWR denied, RDONLY granted
        segid_ro = yield from x.xpmem_make(
            heap.start + PAGE_4K, PAGE_4K, XPMEM_PERMIT_MODE, 0o644
        )
        assert (yield from a.xpmem_get(segid_ro, XPMEM_RDWR, XPMEM_PERMIT_MODE, 0)) \
            == -errno.EACCES
        apid = yield from a.xpmem_get(segid_ro, XPMEM_RDONLY, XPMEM_PERMIT_MODE, 0)
        assert apid > 0
        return True

    assert eng.run_process(run())


def test_attach_out_of_range_einval(basic):
    eng = basic["engine"]
    kitten = basic["cokernels"][0].kernel
    linux = basic["linux"].kernel
    kp = kitten.create_process("exp")
    lp = linux.create_process("att", core_id=2)
    heap = kitten.heap_region(kp)
    x, a = XpmemCompat(kp), XpmemCompat(lp)

    def run():
        segid = yield from x.xpmem_make(
            heap.start, 4 * PAGE_4K, XPMEM_PERMIT_MODE, 0o666
        )
        apid = yield from a.xpmem_get(segid, XPMEM_RDWR, XPMEM_PERMIT_MODE, 0)
        bad = yield from a.xpmem_attach(apid, 8 * PAGE_4K, 4 * PAGE_4K)
        assert bad == -errno.EINVAL
        return True

    assert eng.run_process(run())
