"""Tests for the event-notification extension (§6.1 future work)."""

import pytest

from repro.hw.costs import MB, PAGE_4K
from repro.workloads.hpccg import HpccgProblem
from repro.workloads.insitu import InSituConfig
from repro.xemem import XememError, XpmemApi

from tests.xemem.conftest import build_system


def make_segment(eng, kernel, npages=1):
    proc = kernel.create_process("owner")
    heap = kernel.heap_region(proc)
    api = XpmemApi(proc)

    def run():
        segid = yield from api.xpmem_make(heap.start, npages * PAGE_4K)
        return segid

    return proc, api, eng.run_process(run())


def test_local_signal_wakes_local_waiter(basic):
    eng = basic["engine"]
    kitten = basic["cokernels"][0].kernel
    _proc, api, segid = make_segment(eng, kitten)
    order = []

    def waiter():
        yield from api.xpmem_wait(segid)
        order.append(("woke", eng.now))

    def signaler():
        yield eng.sleep(1000)
        yield from api.xpmem_signal(segid)
        order.append(("signaled", eng.now))

    eng.spawn(waiter())
    eng.spawn(signaler())
    eng.run()
    assert order[0][0] == "signaled" or order[0][0] == "woke"
    assert any(k == "woke" for k, _t in order)


def test_signal_before_wait_is_not_lost(basic):
    """Semaphore semantics: a pending signal satisfies the next wait."""
    eng = basic["engine"]
    kitten = basic["cokernels"][0].kernel
    _proc, api, segid = make_segment(eng, kitten)

    def run():
        yield from api.xpmem_signal(segid)
        yield from api.xpmem_signal(segid)
        t0 = eng.now
        yield from api.xpmem_wait(segid)   # consumes first pending
        yield from api.xpmem_wait(segid)   # consumes second pending
        return eng.now - t0

    assert eng.run_process(run()) == 0


def test_cross_enclave_notify_roundtrip(basic):
    """A remote subscriber is woken by the owner's signal, and the owner
    is woken by the remote side's signal."""
    eng = basic["engine"]
    kitten = basic["cokernels"][0].kernel
    linux = basic["linux"].kernel
    kp = kitten.create_process("owner")
    lp = linux.create_process("waiter", core_id=2)
    heap = kitten.heap_region(kp)
    api_k, api_l = XpmemApi(kp), XpmemApi(lp)
    log = []

    def owner():
        segid = yield from api_k.xpmem_make(heap.start, PAGE_4K, name="bell")
        yield eng.sleep(50_000)
        yield from api_k.xpmem_signal(segid)      # wake the remote waiter
        yield from api_k.xpmem_wait(segid)        # then wait for its reply
        log.append(("owner-woke", eng.now))

    def waiter():
        yield eng.sleep(10_000)
        segid = yield from api_l.xpmem_search("bell")
        yield from api_l.xpmem_subscribe(segid)
        yield from api_l.xpmem_wait(segid)
        log.append(("waiter-woke", eng.now))
        yield from api_l.xpmem_signal(segid)

    po = eng.spawn(owner())
    pw = eng.spawn(waiter())
    eng.run()
    assert not po.failed and not pw.failed
    assert [k for k, _t in log] == ["waiter-woke", "owner-woke"]
    # the wake crossed a channel: it took nonzero time after the signal
    assert log[0][1] > 50_000


def test_signal_unknown_segid_errors(basic):
    eng = basic["engine"]
    linux = basic["linux"].kernel
    lp = linux.create_process("p", core_id=1)

    def run():
        from repro.xemem.ids import SegmentId

        api = XpmemApi(lp)
        with pytest.raises(XememError):
            yield from api.xpmem_subscribe(SegmentId(0xABCDEF))
        with pytest.raises(XememError):
            yield from api.xpmem_signal(SegmentId(0xABCDEF))
        return True

    assert eng.run_process(run())


def test_one_signal_wakes_one_waiter_per_ring(basic):
    eng = basic["engine"]
    kitten = basic["cokernels"][0].kernel
    _proc, api, segid = make_segment(eng, kitten)
    woken = []

    def waiter(i):
        yield from api.xpmem_wait(segid)
        woken.append(i)

    eng.spawn(waiter(0))
    eng.spawn(waiter(1))

    def signaler():
        yield eng.sleep(100)
        yield from api.xpmem_signal(segid)

    eng.spawn(signaler())
    eng.run(until_ns=1_000_000)
    assert len(woken) == 1  # one ring, one wake


@pytest.mark.parametrize("config_name", ["linux_linux", "kitten_linux"])
def test_insitu_notify_mode_works_and_is_not_slower(config_name):
    """Ablation E's premise: kernel doorbells replace polling without
    breaking the workflow, and save the polling detection latency."""
    from repro.bench.configs import build_insitu_rig

    times = {}
    for mode in ("poll", "notify"):
        cfg = InSituConfig(
            execution="sync", attach="one_time",
            iterations=60, comm_interval=20, data_bytes=16 * MB,
            problem=HpccgProblem(24, 24, 24), signal_mode=mode,
        )
        rig = build_insitu_rig(config_name, cfg, seed=3)
        res = rig["workload"].run()
        assert res.data_marks_verified
        times[mode] = res.sim_time_s
    assert times["notify"] <= times["poll"]


def test_bad_signal_mode_rejected():
    with pytest.raises(ValueError):
        InSituConfig(signal_mode="semaphore")
