"""Tests for EnclaveSystem.describe()."""

from tests.xemem.conftest import build_system


def test_describe_shape():
    rig = build_system(num_cokernels=2, with_vm=True, vm_host="kitten")
    desc = rig["system"].describe()
    by_name = {d["name"]: d for d in desc}
    assert by_name["linux"]["is_name_server"]
    assert by_name["linux"]["id"] == 0
    assert by_name["linux"]["name_server_via"] == "local"
    assert by_name["kitten0"]["kernel"] == "kitten"
    assert by_name["kitten0"]["name_server_via"] == "linux"
    vm = by_name["vm0"]
    assert vm["virtualized"] and vm["kernel"] == "linux"
    assert vm["name_server_via"] == "kitten0"
    # the name server routes to everyone
    assert set(by_name["linux"]["routes"]) == {
        d["id"] for d in desc if d["id"] != 0
    }
    # cores and frames reported
    assert all(d["cores"] and d["frames"] > 0 for d in desc)
