"""Property tests for the admission controller's accounting contract.

The invariants the module docstring promises, proven over randomized
arrival schedules, service times, policies, and queue shapes:

* conservation — at every virtual time,
  ``offered == admitted + rejected + shed + aborted + waiting``;
* boundedness — ``waiting`` never exceeds ``queue_cap`` and
  ``in_service`` never exceeds ``workers``, at any virtual time;
* single verdict — every offered request resolves to exactly one of
  serve/reject/shed (never both granted and refused);
* drain — once the engine quiesces nothing is left parked, and the
  verdict tallies equal the controller's counters.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.sim import Engine
from repro.xemem import commands as C
from repro.xemem.overload import (
    REJECT, SERVE, SHED, AdmissionController, OverloadConfig,
)

#: One representative kind per admission class, plus defaults.
KINDS = (
    C.GET_REQ, C.ATTACH_REQ, C.RELEASE_REQ, C.LOOKUP_NAME,
    C.LIST_NAMES, C.ALLOC_SEGID, C.SIGNAL_REQ, C.ENCLAVE_DEPART,
)

#: (kind index, inter-arrival gap ns, service time ns)
REQUESTS = st.lists(
    st.tuples(
        st.integers(0, len(KINDS) - 1),
        st.integers(0, 30_000),
        st.integers(0, 25_000),
    ),
    min_size=1, max_size=40,
)


def run_schedule(policy, workers, qcap, requests, abort_at_ns=None):
    """Drive one controller through a request schedule; returns
    (controller, verdicts list, aborts)."""
    eng = Engine()
    cfg = OverloadConfig(
        policy=policy, workers=workers, queue_cap=qcap,
        codel_target_ns=5_000, codel_interval_ns=10_000,
    )
    ctrl = AdmissionController(cfg, eng, "prop")
    verdicts = []
    aborts = []

    def check_invariants():
        assert ctrl.waiting <= cfg.queue_cap
        assert ctrl.in_service <= cfg.workers
        assert ctrl.offered == (
            ctrl.admitted + ctrl.rejected + ctrl.shed + ctrl.aborted
            + ctrl.waiting
        )

    def req(kind, service_ns):
        try:
            verdict = yield from ctrl.admit(kind)
        except RuntimeError:
            aborts.append(kind)
            check_invariants()
            return
        verdicts.append(verdict)
        check_invariants()
        if verdict == SERVE:
            yield eng.sleep(service_ns)
            ctrl.release()
            check_invariants()

    def arrivals():
        for i, (kind_idx, gap, service) in enumerate(requests):
            if gap:
                yield eng.sleep(gap)
            eng.spawn(req(KINDS[kind_idx], service), name=f"req{i}")
            check_invariants()

    def killer():
        yield eng.sleep(abort_at_ns)
        ctrl.fail_all(RuntimeError("crash"))
        check_invariants()

    eng.run_process(arrivals(), name="arrivals")
    if abort_at_ns is not None:
        eng.spawn(killer(), name="killer")
    eng.run()
    check_invariants()
    return ctrl, verdicts, aborts


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    policy=st.sampled_from(["fail-fast", "codel"]),
    workers=st.integers(1, 3),
    qcap=st.integers(1, 12),
    requests=REQUESTS,
)
def test_offered_balance_and_bounded_queues(policy, workers, qcap, requests):
    ctrl, verdicts, aborts = run_schedule(policy, workers, qcap, requests)
    # drained: nothing parked, nothing in service
    assert ctrl.waiting == 0 and ctrl.in_service == 0
    # single verdict per request, none lost
    assert len(verdicts) == len(requests)
    assert not aborts
    # the verdict tallies ARE the counters (no double accounting)
    assert verdicts.count(SERVE) == ctrl.admitted
    assert verdicts.count(REJECT) == ctrl.rejected
    assert verdicts.count(SHED) == ctrl.shed
    assert ctrl.offered == len(requests)
    assert ctrl.admitted == ctrl.completed
    # shedding is a codel-only, new/discovery-only behavior
    if policy == "fail-fast":
        assert ctrl.shed == 0


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    workers=st.integers(1, 2),
    qcap=st.integers(1, 8),
    requests=REQUESTS,
    abort_at_ns=st.integers(0, 200_000),
)
def test_fail_all_preserves_the_balance(workers, qcap, requests, abort_at_ns):
    ctrl, verdicts, aborts = run_schedule(
        "fail-fast", workers, qcap, requests, abort_at_ns=abort_at_ns,
    )
    # every request resolved exactly once, as a verdict or an abort
    assert len(verdicts) + len(aborts) == len(requests)
    assert ctrl.aborted == len(aborts)
    assert ctrl.waiting == 0
    assert ctrl.offered == (
        ctrl.admitted + ctrl.rejected + ctrl.shed + ctrl.aborted
    )
