"""Concurrency and windowed-attach behaviour across enclaves."""

import numpy as np
import pytest

from repro.hw.costs import PAGE_4K
from repro.xemem import XememError, XpmemApi

from tests.xemem.conftest import build_system


def test_remote_windowed_attach(basic):
    """Offset/size windows work across the enclave boundary too."""
    eng = basic["engine"]
    kitten = basic["cokernels"][0].kernel
    linux = basic["linux"].kernel
    kp = kitten.create_process("exp")
    lp = linux.create_process("att", core_id=2)
    heap = kitten.heap_region(kp)

    def run():
        api_k, api_l = XpmemApi(kp), XpmemApi(lp)
        segid = yield from api_k.xpmem_make(heap.start, 64 * PAGE_4K)
        apid = yield from api_l.xpmem_get(segid)
        att = yield from api_l.xpmem_attach(apid, offset=16 * PAGE_4K,
                                            size=8 * PAGE_4K)
        assert att.npages == 8
        api_k.segment(segid).view().write(16 * PAGE_4K + 3, b"windowed")
        got = att.read(3, 8)
        # out-of-range windows rejected by the owner
        with pytest.raises(XememError):
            yield from api_l.xpmem_attach(apid, offset=60 * PAGE_4K,
                                          size=16 * PAGE_4K)
        return got

    assert eng.run_process(run()) == b"windowed"


def test_windowed_attach_maps_only_window_frames(basic):
    eng = basic["engine"]
    kitten = basic["cokernels"][0].kernel
    linux = basic["linux"].kernel
    kp = kitten.create_process("exp")
    lp = linux.create_process("att", core_id=2)
    heap = kitten.heap_region(kp)

    def run():
        api_k, api_l = XpmemApi(kp), XpmemApi(lp)
        segid = yield from api_k.xpmem_make(heap.start, 64 * PAGE_4K)
        apid = yield from api_l.xpmem_get(segid)
        att = yield from api_l.xpmem_attach(apid, offset=16 * PAGE_4K,
                                            size=8 * PAGE_4K)
        return att

    att = eng.run_process(run())
    window_pfns = lp.aspace.table.translate_range(att.vaddr, 8)
    exporter_pfns = kp.aspace.table.translate_range(
        heap.start + 16 * PAGE_4K, 8
    )
    assert (window_pfns == exporter_pfns).all()


def test_many_attachers_one_segment(basic):
    """Several Linux processes attach the same Kitten segment at once."""
    eng = basic["engine"]
    kitten = basic["cokernels"][0].kernel
    linux = basic["linux"].kernel
    kp = kitten.create_process("exp")
    heap = kitten.heap_region(kp)
    api_k = XpmemApi(kp)
    seg_event = eng.event("segid")
    reads = {}

    def exporter():
        segid = yield from api_k.xpmem_make(heap.start, 32 * PAGE_4K)
        api_k.segment(segid).view().write(0, b"fanout!!")
        seg_event.trigger(segid)

    def attacher(i):
        segid = yield seg_event
        proc = linux.create_process(f"att{i}", core_id=1 + i)
        api = XpmemApi(proc)
        apid = yield from api.xpmem_get(segid)
        att = yield from api.xpmem_attach(apid)
        reads[i] = att.read(0, 8)
        yield from api.xpmem_detach(att)
        yield from api.xpmem_release(apid)

    eng.spawn(exporter())
    procs = [eng.spawn(attacher(i)) for i in range(5)]
    eng.run()
    assert all(p.finished and not p.failed for p in procs)
    assert all(reads[i] == b"fanout!!" for i in range(5))
    # all grants returned
    seg = next(iter(api_k._segments.values()))
    assert seg.grants_out == 0


def test_detach_one_attacher_leaves_others_live(basic):
    eng = basic["engine"]
    kitten = basic["cokernels"][0].kernel
    linux = basic["linux"].kernel
    kp = kitten.create_process("exp")
    heap = kitten.heap_region(kp)
    lp1 = linux.create_process("a", core_id=1)
    lp2 = linux.create_process("b", core_id=2)

    def run():
        api_k = XpmemApi(kp)
        api1, api2 = XpmemApi(lp1), XpmemApi(lp2)
        segid = yield from api_k.xpmem_make(heap.start, 8 * PAGE_4K)
        ap1 = yield from api1.xpmem_get(segid)
        ap2 = yield from api2.xpmem_get(segid)
        att1 = yield from api1.xpmem_attach(ap1)
        att2 = yield from api2.xpmem_attach(ap2)
        yield from api1.xpmem_detach(att1)
        api_k.segment(segid).view().write(0, b"still here")
        return att2.read(0, 10)

    assert eng.run_process(run()) == b"still here"


def test_concurrent_recurring_cycles_interleave(basic):
    """Two independent exporter/attacher pairs cycling concurrently on
    the same pair of enclaves never corrupt each other's registries."""
    eng = basic["engine"]
    kitten = basic["cokernels"][0].kernel
    linux = basic["linux"].kernel
    results = {}

    def pair(i):
        kp = kitten.create_process(f"exp{i}")
        lp = linux.create_process(f"att{i}", core_id=1 + i)
        heap = kitten.heap_region(kp)
        api_k, api_l = XpmemApi(kp), XpmemApi(lp)
        seen = []
        for cycle in range(6):
            segid = yield from api_k.xpmem_make(heap.start, 4 * PAGE_4K)
            api_k.segment(segid).view().write(0, bytes([i * 16 + cycle]))
            apid = yield from api_l.xpmem_get(segid)
            att = yield from api_l.xpmem_attach(apid)
            seen.append(att.read(0, 1)[0])
            yield from api_l.xpmem_detach(att)
            yield from api_l.xpmem_release(apid)
            yield from api_k.xpmem_remove(segid)
        results[i] = seen

    procs = [eng.spawn(pair(i)) for i in range(2)]
    eng.run()
    assert all(p.finished and not p.failed for p in procs)
    for i in range(2):
        assert results[i] == [i * 16 + c for c in range(6)]


def test_apid_isolated_per_process(basic):
    """A grant issued to one process cannot be attached by another."""
    eng = basic["engine"]
    kitten = basic["cokernels"][0].kernel
    linux = basic["linux"].kernel
    kp = kitten.create_process("exp")
    heap = kitten.heap_region(kp)
    lp1 = linux.create_process("a", core_id=1)
    lp2 = linux.create_process("b", core_id=2)

    def run():
        api_k = XpmemApi(kp)
        api1, api2 = XpmemApi(lp1), XpmemApi(lp2)
        segid = yield from api_k.xpmem_make(heap.start, 4 * PAGE_4K)
        apid = yield from api1.xpmem_get(segid)
        with pytest.raises(XememError):
            yield from api2.xpmem_attach(apid)
        return True

    assert eng.run_process(run())
