"""Tests for the §3.2 discovery and routing protocol."""

import pytest

from repro.enclave import EnclaveSystem
from repro.enclave.topology import DiscoveryError
from repro.xemem.routing import RoutingError, RoutingTable

from tests.xemem.conftest import build_system


def test_name_server_gets_id_zero(basic):
    assert basic["linux"].enclave_id == 0


def test_every_enclave_discovered(basic):
    for enclave in basic["system"].enclaves:
        assert enclave.enclave_id is not None
        assert enclave.module.routing.discovered


def test_ids_are_unique():
    rig = build_system(num_cokernels=8)
    ids = [e.enclave_id for e in rig["system"].enclaves]
    assert len(set(ids)) == len(ids)
    assert sorted(ids) == list(range(9))


def test_cokernel_ns_channel_points_to_linux(basic):
    kitten = basic["cokernels"][0]
    ch = kitten.module.routing.ns_channel
    assert ch is not None
    assert ch.other(kitten) is basic["linux"]


def test_ns_learns_routes_to_all():
    rig = build_system(num_cokernels=4)
    linux_routes = rig["linux"].module.routing.routes
    for kitten in rig["cokernels"]:
        assert kitten.enclave_id in linux_routes
        assert linux_routes[kitten.enclave_id].other(rig["linux"]) is kitten


def test_vm_discovery_routes_through_host():
    """A VM on a Kitten host is two hops from the name server: the name
    server must route to it via the Kitten channel, and the Kitten must
    have learned the final hop."""
    rig = build_system(num_cokernels=1, with_vm=True, vm_host="kitten")
    vm, kitten, linux = rig["vm"], rig["cokernels"][0], rig["linux"]
    assert vm.enclave_id is not None
    # NS routes toward the VM via the kitten channel
    ns_hop = linux.module.routing.routes[vm.enclave_id]
    assert ns_hop.other(linux) is kitten
    # the kitten routes the final hop to the VM
    kitten_hop = kitten.module.routing.routes[vm.enclave_id]
    assert kitten_hop.other(kitten) is vm
    # the VM's NS path goes up through the kitten
    assert vm.module.routing.ns_channel.other(vm) is kitten


def test_routing_rule_falls_back_to_ns_channel(basic):
    kitten = basic["cokernels"][0]
    table = kitten.module.routing
    # kitten knows no route to enclave 77: must pick the NS channel
    assert table.channel_for(77) is table.ns_channel


def test_routing_error_without_ns_path():
    table = RoutingTable()
    with pytest.raises(RoutingError):
        table.channel_for(5)


def test_disconnected_topology_rejected():
    from repro.enclave import Enclave
    from repro.hw import NodeHardware, R420_SPEC
    from repro.hw.costs import GB
    from repro.pisces import PiscesManager
    from repro.sim import Engine

    eng = Engine()
    node = NodeHardware(eng, R420_SPEC)
    pisces = PiscesManager(node)
    linux = pisces.boot_linux(core_ids=range(0, 4), mem_bytes=4 * GB)
    system = EnclaveSystem(node)
    system.add_enclave(linux)
    # an enclave with no channels at all
    from repro.hw.memory import FrameAllocator
    from repro.kernels import KittenKernel

    rng = node.memory.zone(0).allocator.alloc(1024)
    orphan_kernel = KittenKernel(
        eng, node, [node.core(10)], FrameAllocator(rng.start_pfn, 1024), name="orphan"
    )
    system.add_enclave(Enclave(orphan_kernel))
    system.designate_name_server(linux)
    with pytest.raises(DiscoveryError, match="cannot reach"):
        system.validate_connected()


def test_discovery_takes_simulated_time(basic):
    # IPIs and channel hops cost time: the clock must have advanced
    assert basic["engine"].now > 0
