"""Stateful property test: random XPMEM API call sequences vs a model.

Hypothesis drives arbitrary interleavings of make/get/attach/detach/
release/remove across a two-enclave system (Kitten exporter side, Linux
attacher side) and checks after every step that:

* grant accounting matches an independent model,
* every live attachment still translates to the exporter's frames and
  observes its writes (zero-copy),
* removed segments reject new gets,
* the name server's live-segment count matches the model,
* page-table populations never go negative / leak across teardown.
"""

import numpy as np
import pytest
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.hw.costs import PAGE_4K
from repro.xemem import XememError, XpmemApi

from tests.xemem.conftest import build_system

#: Enough heap slots that `make` is always available (steps are capped
#: well below this), so the machine never reaches a dead state.
MAX_SLOTS = 60
SEG_PAGES = 4


class XememMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.rig = build_system(num_cokernels=1)
        self.eng = self.rig["engine"]
        self.kitten = self.rig["cokernels"][0].kernel
        self.linux = self.rig["linux"].kernel
        self.ns = self.rig["linux"].module.nameserver
        self.exporter = self.kitten.create_process("exp")
        self.attacher = self.linux.create_process("att", core_id=2)
        self.api_x = XpmemApi(self.exporter)
        self.api_a = XpmemApi(self.attacher)
        self.heap = self.kitten.heap_region(self.exporter)
        # model state
        self.segments = {}     # segid -> {"offset_pages", "removed"}
        self.grants = {}       # apid -> segid
        self.attachments = {}  # key -> (att, segid)
        self._next_slot = 0
        self._key = 0
        self.ns_base = self.ns.live_segments

    def _run(self, gen):
        return self.eng.run_process(gen)

    # ---------------------------------------------------------------- rules

    @precondition(lambda self: self._next_slot < MAX_SLOTS)
    @rule()
    def make(self):
        offset = self._next_slot * SEG_PAGES
        self._next_slot += 1
        segid = self._run(
            self.api_x.xpmem_make(
                self.heap.start + offset * PAGE_4K, SEG_PAGES * PAGE_4K
            )
        )
        self.segments[segid] = {"offset_pages": offset, "removed": False}

    @precondition(lambda self: any(not s["removed"] for s in self.segments.values()))
    @rule(data=st.data())
    def get(self, data):
        live = [s for s, rec in self.segments.items() if not rec["removed"]]
        segid = data.draw(st.sampled_from(live))
        apid = self._run(self.api_a.xpmem_get(segid))
        self.grants[apid] = segid

    @precondition(lambda self: bool(self.grants))
    @rule(data=st.data())
    def attach(self, data):
        apid = data.draw(st.sampled_from(sorted(self.grants, key=int)))
        segid = self.grants[apid]
        if self.segments[segid]["removed"]:
            with pytest.raises(XememError):
                self._run(self.api_a.xpmem_attach(apid))
            return
        att = self._run(self.api_a.xpmem_attach(apid))
        self._key += 1
        self.attachments[self._key] = (att, segid)
        # zero-copy check right away: write via exporter, read via attacher
        stamp = (self._key * 7919) % 251
        self.api_x.segment(segid).view().write(0, bytes([stamp]))
        assert att.read(0, 1) == bytes([stamp])

    @precondition(lambda self: bool(self.attachments))
    @rule(data=st.data())
    def detach(self, data):
        key = data.draw(st.sampled_from(sorted(self.attachments)))
        att, _segid = self.attachments.pop(key)
        self._run(self.api_a.xpmem_detach(att))
        assert self.attacher.aspace.find_region(att.vaddr) is None

    @precondition(lambda self: any(
        apid for apid in self.grants
        if not any(s == self.grants[apid] for _a, s in self.attachments.values())
    ))
    @rule(data=st.data())
    def release_unused(self, data):
        attached_segids = {s for _a, s in self.attachments.values()}
        candidates = sorted(
            (a for a, s in self.grants.items() if s not in attached_segids), key=int
        )
        apid = data.draw(st.sampled_from(candidates))
        self._run(self.api_a.xpmem_release(apid))
        del self.grants[apid]

    @precondition(lambda self: any(not s["removed"] for s in self.segments.values()))
    @rule(data=st.data())
    def remove(self, data):
        live = [s for s, rec in self.segments.items() if not rec["removed"]]
        segid = data.draw(st.sampled_from(live))
        self._run(self.api_x.xpmem_remove(segid))
        self.segments[segid]["removed"] = True
        # further gets must fail
        with pytest.raises(XememError):
            self._run(self.api_a.xpmem_get(segid))

    # ------------------------------------------------------------- invariants

    @invariant()
    def name_server_matches_model(self):
        if not hasattr(self, "ns"):
            return
        live = sum(1 for rec in self.segments.values() if not rec["removed"])
        assert self.ns.live_segments - self.ns_base == live

    @invariant()
    def attachments_translate_and_alias(self):
        if not hasattr(self, "ns"):
            return
        for att, segid in self.attachments.values():
            pfns = self.attacher.aspace.table.translate_range(att.vaddr, att.npages)
            offset = self.segments[segid]["offset_pages"]
            expected = self.exporter.aspace.table.translate_range(
                self.heap.start + offset * PAGE_4K, SEG_PAGES
            )
            assert (pfns == expected).all()

    @invariant()
    def grant_accounting_balances(self):
        if not hasattr(self, "ns"):
            return
        module = self.rig["cokernels"][0].module
        for segid, rec in self.segments.items():
            if rec["removed"]:
                continue
            held = sum(1 for s in self.grants.values() if s == segid)
            assert module.segments[int(segid)].grants_out == held


TestXememProtocol = XememMachine.TestCase
TestXememProtocol.settings = settings(
    max_examples=15, stateful_step_count=30, deadline=None
)
