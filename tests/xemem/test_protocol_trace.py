"""Verify the exact Fig. 3 message sequences via the protocol trace."""

import pytest

from repro.hw.costs import PAGE_4K
from repro.xemem import XpmemApi

from tests.xemem.conftest import build_system


def test_attach_flow_message_sequence(basic):
    """One remote attach produces exactly the Fig. 3 steps on the wire:
    segid allocation at export, then get and attach request/response
    pairs, with the PFN list riding only on the attach response."""
    rig = basic
    eng = rig["engine"]
    trace = rig["system"].trace
    kitten = rig["cokernels"][0].kernel
    linux = rig["linux"].kernel
    kp = kitten.create_process("exp")
    lp = linux.create_process("att", core_id=2)
    heap = kitten.heap_region(kp)
    trace.enabled = True

    def run():
        api_k, api_l = XpmemApi(kp), XpmemApi(lp)
        segid = yield from api_k.xpmem_make(heap.start, 16 * PAGE_4K)
        apid = yield from api_l.xpmem_get(segid)
        att = yield from api_l.xpmem_attach(apid)
        return att

    eng.run_process(run())
    kinds = [ev.detail["command"] for ev in trace.of_kind("msg")]
    assert kinds == [
        "alloc_segid",      # export: Kitten asks the name server (Fig. 3: 2-3)
        "segid_assigned",
        "get_req",          # NS resolves the owner, forwards (Fig. 3: route)
        "get_resp",
        "attach_req",       # Fig. 3: 4-5
        "attach_resp",      # Fig. 3: 6-7, carrying the PFN list
    ]
    pfn_counts = [ev.detail["npfns"] for ev in trace.of_kind("msg")]
    assert pfn_counts == [0, 0, 0, 0, 0, 16]  # only the attach response


def test_sibling_attach_routes_two_hops_each_way():
    """Kitten-to-Kitten traffic transits the name-server enclave: each
    protocol message appears on two channel hops."""
    rig = build_system(num_cokernels=2)
    eng = rig["engine"]
    trace = rig["system"].trace
    k0, k1 = (e.kernel for e in rig["cokernels"])
    exp = k0.create_process("exp")
    att_p = k1.create_process("att")
    heap = k0.heap_region(exp)

    def setup():
        api_x = XpmemApi(exp)
        segid = yield from api_x.xpmem_make(heap.start, 4 * PAGE_4K)
        return segid

    segid = eng.run_process(setup())
    trace.enabled = True

    def attach():
        api_a = XpmemApi(att_p)
        apid = yield from api_a.xpmem_get(segid)
        yield from api_a.xpmem_attach(apid)

    eng.run_process(attach())
    hops = [(ev.detail["command"], ev.detail["hop"]) for ev in trace.of_kind("msg")]
    # each of the four protocol messages crosses exactly two channels
    assert len(hops) == 8
    attach_resp_hops = [h for k, h in hops if k == "attach_resp"]
    assert attach_resp_hops == ["kitten0->linux", "linux->kitten1"]


def test_trace_disabled_records_nothing(basic):
    rig = basic
    eng = rig["engine"]
    kitten = rig["cokernels"][0].kernel
    kp = kitten.create_process("exp")
    heap = kitten.heap_region(kp)

    def run():
        api = XpmemApi(kp)
        yield from api.xpmem_make(heap.start, PAGE_4K)

    eng.run_process(run())
    assert len(rig["system"].trace) == 0
