"""Property test: MappedRegion behaves exactly like a flat bytearray."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.costs import MB, PAGE_4K
from repro.hw.memory import PhysicalMemory, ranges_to_pfns


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_region_matches_reference_bytearray(data):
    npages = data.draw(st.integers(1, 8))
    mem = PhysicalMemory([2 * MB])
    ranges = mem.zones[0].allocator.alloc_scattered(npages)
    region = mem.map_region(ranges_to_pfns(ranges))
    reference = bytearray(npages * PAGE_4K)

    for _ in range(data.draw(st.integers(1, 12))):
        offset = data.draw(st.integers(0, region.nbytes - 1))
        length = data.draw(st.integers(1, min(3 * PAGE_4K, region.nbytes - offset)))
        if data.draw(st.booleans()):
            payload = bytes(
                data.draw(st.binary(min_size=length, max_size=length))
            )
            region.write(offset, payload)
            reference[offset : offset + length] = payload
        else:
            assert region.read(offset, length) == bytes(
                reference[offset : offset + length]
            )
    assert region.read(0, region.nbytes) == bytes(reference)


@settings(max_examples=25, deadline=None)
@given(st.integers(1, 6), st.integers(0, 2**32 - 1))
def test_aliased_regions_always_agree(npages, seed):
    mem = PhysicalMemory([2 * MB])
    pfns = ranges_to_pfns(mem.zones[0].allocator.alloc_scattered(npages))
    a = mem.map_region(pfns)
    b = mem.map_region(pfns)
    rng = np.random.default_rng(seed)
    payload = rng.integers(0, 256, size=npages * PAGE_4K, dtype=np.uint8).tobytes()
    a.write(0, payload)
    assert b.read(0, len(payload)) == payload
    assert a.checksum() == b.checksum()
