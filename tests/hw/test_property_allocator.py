"""Property-based tests: FrameAllocator invariants under random workloads."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.memory import FrameAllocator, FrameRange, OutOfMemoryError


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_alloc_free_never_loses_or_duplicates_frames(data):
    """Random alloc/free interleavings: allocated ranges never overlap,
    and freeing everything restores the full pool."""
    total = data.draw(st.integers(16, 512))
    alloc = FrameAllocator(0, total)
    live = []
    for _ in range(data.draw(st.integers(1, 40))):
        if live and data.draw(st.booleans()):
            idx = data.draw(st.integers(0, len(live) - 1))
            for rng in live.pop(idx):
                alloc.free(rng)
        else:
            want = data.draw(st.integers(1, max(1, total // 4)))
            kind = data.draw(st.sampled_from(["contig", "pages", "scattered"]))
            try:
                if kind == "contig":
                    got = [alloc.alloc(want)]
                elif kind == "pages":
                    got = alloc.alloc_pages(want)
                else:
                    got = alloc.alloc_scattered(want)
            except OutOfMemoryError:
                continue
            live.append(got)
        # invariant: live allocations are disjoint
        taken = np.zeros(total, dtype=bool)
        for group in live:
            for rng in group:
                window = taken[rng.start_pfn : rng.end_pfn]
                assert not window.any(), "overlapping allocation"
                taken[rng.start_pfn : rng.end_pfn] = True
        # invariant: free + used == total
        assert alloc.free_frames + int(taken.sum()) == total
    for group in live:
        for rng in group:
            alloc.free(rng)
    assert alloc.free_frames == total
    assert alloc.alloc(total).nframes == total


@settings(max_examples=40, deadline=None)
@given(st.integers(1, 64), st.integers(130, 400))
def test_scattered_frames_are_pairwise_nonadjacent(n, total):
    alloc = FrameAllocator(0, total)
    got = alloc.alloc_scattered(n)
    pfns = sorted(r.start_pfn for r in got)
    assert all(r.nframes == 1 for r in got)
    assert all(b - a >= 2 for a, b in zip(pfns, pfns[1:]))
