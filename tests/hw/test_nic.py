"""Unit tests for the InfiniBand NIC / RDMA model."""

import pytest

from repro.hw import InfinibandNic
from repro.hw.costs import CostModel, GB, MB
from repro.sim import Engine
from repro.sim.engine import NS_PER_SEC


def test_rdma_write_bandwidth_matches_model():
    eng = Engine()
    costs = CostModel()
    nic = InfinibandNic(eng, costs)

    def proc():
        yield from nic.vf(0).rdma_write(1 * GB)
        return eng.now

    elapsed = eng.run_process(proc())
    implied_bw = 1 * GB / (elapsed / NS_PER_SEC)
    # Should sit just under the configured 3.4 GB/s (posting latency)
    assert implied_bw == pytest.approx(costs.rdma_bw_bytes_per_s, rel=0.01)
    assert nic.bytes_on_wire == 1 * GB


def test_rdma_segmentation_count():
    eng = Engine()
    nic = InfinibandNic(eng, CostModel())

    def proc():
        nsegs = yield from nic.vf(0).rdma_write(10 * 4096 + 1)
        return nsegs

    assert eng.run_process(proc()) == 11


def test_concurrent_vfs_share_the_link():
    """Two VFs writing simultaneously each see about half the bandwidth."""
    eng = Engine()
    costs = CostModel()
    nic = InfinibandNic(eng, costs, num_vfs=2)
    done = {}

    def writer(vf_id):
        yield from nic.vf(vf_id).rdma_write(256 * MB)
        done[vf_id] = eng.now

    eng.spawn(writer(0))
    eng.spawn(writer(1))
    eng.run()
    serial_ns = 256 * MB * 1e9 / costs.rdma_bw_bytes_per_s
    # second finisher waited for the first: total ~2x a single transfer
    assert max(done.values()) == pytest.approx(2 * serial_ns, rel=0.05)


def test_bad_rdma_size():
    eng = Engine()
    nic = InfinibandNic(eng, CostModel())

    def proc():
        yield from nic.vf(0).rdma_write(0)

    with pytest.raises(ValueError):
        eng.run_process(proc())


def test_vf_accounting():
    eng = Engine()
    nic = InfinibandNic(eng, CostModel())

    def proc():
        yield from nic.vf(0).rdma_write(1 * MB)
        yield from nic.vf(0).rdma_write(1 * MB)

    eng.run_process(proc())
    assert nic.vf(0).bytes_sent == 2 * MB
    assert nic.vf(0).ops_posted == 2


def test_num_vfs_validation():
    eng = Engine()
    with pytest.raises(ValueError):
        InfinibandNic(eng, CostModel(), num_vfs=0)
