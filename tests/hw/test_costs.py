"""Unit tests for the cost model: calibration invariants live here.

These tests pin the calibration of DESIGN.md §4 so that accidental edits
to constants that would break figure shapes fail loudly.
"""

import pytest

from repro.hw.costs import CostModel, DEFAULT_COSTS, GB, PAGE_4K, gib_per_s


def test_native_attach_pipeline_lands_near_13_gbps():
    c = CostModel()
    per_page = c.native_attach_per_page_ns()
    gbps = gib_per_s(PAGE_4K, per_page)
    assert 12.5 <= gbps <= 13.8


def test_attach_read_gap_is_about_one_gbps():
    c = CostModel()
    attach = c.native_attach_per_page_ns()
    combined = attach + c.page_touch_ns
    gap = gib_per_s(PAGE_4K, attach) - gib_per_s(PAGE_4K, combined)
    assert 0.5 <= gap <= 1.6


def test_gib_per_s_helper():
    assert gib_per_s(GB, 1e9) == pytest.approx(1.0)
    with pytest.raises(ValueError):
        gib_per_s(1, 0)


def test_fixed_cost_negligible_at_128mb():
    """Fig. 5 is flat because fixed costs vanish against per-page work."""
    c = CostModel()
    pages = c.pages_of(128 * 1024 * 1024)
    per_page_total = pages * c.native_attach_per_page_ns()
    assert c.attach_fixed_ns / per_page_total < 0.005


def test_one_gb_walk_matches_fig7_detour_band():
    """A 1 GB attachment steals ~23-24 ms from the exporting Kitten core."""
    c = CostModel()
    pages = c.pages_of(1 * GB)
    walk_ns = pages * c.walk_per_page_ns
    assert 20e6 <= walk_ns <= 26e6


def test_rdma_baseline_band():
    c = CostModel()
    assert 3.0e9 <= c.rdma_bw_bytes_per_s <= 3.6e9


def test_pages_of_rounds_up():
    c = CostModel()
    assert c.pages_of(1) == 1
    assert c.pages_of(PAGE_4K) == 1
    assert c.pages_of(PAGE_4K + 1) == 2


def test_pfn_list_chunks():
    c = CostModel()
    pfns_per_chunk = c.channel_chunk_bytes // 8
    assert c.pfn_list_chunks(1) == 1
    assert c.pfn_list_chunks(pfns_per_chunk) == 1
    assert c.pfn_list_chunks(pfns_per_chunk + 1) == 2


def test_validate_rejects_negative():
    c = CostModel(walk_per_page_ns=-1)
    with pytest.raises(ValueError):
        c.validate()


def test_validate_rejects_ragged_chunk():
    c = CostModel(channel_chunk_bytes=100)
    with pytest.raises(ValueError):
        c.validate()


def test_default_costs_valid():
    DEFAULT_COSTS.validate()


def test_memcpy_and_rdma_helpers():
    c = CostModel()
    assert c.memcpy_ns(c.memcpy_bw_bytes_per_s) == pytest.approx(1e9)
    assert c.rdma_transfer_ns(0) == c.rdma_post_ns
