"""Unit tests for IPI delivery and handler dispatch."""

import pytest

from repro.hw import NodeHardware, OPTIPLEX_SPEC
from repro.hw.costs import CostModel
from repro.sim import Engine


def make_node():
    eng = Engine()
    return eng, NodeHardware(eng, OPTIPLEX_SPEC, costs=CostModel())


def test_vector_allocation_unique():
    _eng, node = make_node()
    v1 = node.intc.allocate_vector(0)
    v2 = node.intc.allocate_vector(0)
    assert v1.vector != v2.vector
    assert v1.vector >= 32  # reserved exception range respected


def test_bad_vector_range():
    from repro.hw.interrupts import IpiVector

    with pytest.raises(ValueError):
        IpiVector(256, 0)


def test_ipi_runs_handler_on_target_core():
    eng, node = make_node()
    vec = node.intc.allocate_vector(2)
    log = []

    def handler(payload):
        log.append((eng.now, payload))
        yield eng.sleep(100)
        return "handled"

    node.intc.register(vec, handler)

    def sender():
        result = yield from node.intc.send_ipi(vec, payload="ping")
        return (result, eng.now)

    result, t = eng.run_process(sender())
    assert result == "handled"
    assert log == [(node.costs.ipi_latency_ns, "ping")]
    assert t == node.costs.ipi_latency_ns + 100
    # handler occupancy shows up in the target core's steal log
    assert node.core(2).steal_log == [(node.costs.ipi_latency_ns, 100, f"irq:{vec.vector}")]
    assert node.intc.delivered == 1


def test_ipi_to_unbound_vector_fails():
    eng, node = make_node()
    vec = node.intc.allocate_vector(0)

    def sender():
        yield from node.intc.send_ipi(vec)

    with pytest.raises(RuntimeError, match="unbound"):
        eng.run_process(sender())


def test_double_register_rejected():
    _eng, node = make_node()
    vec = node.intc.allocate_vector(0)

    def handler(_):
        yield from ()

    node.intc.register(vec, handler)
    with pytest.raises(ValueError):
        node.intc.register(vec, handler)


def test_handlers_on_same_core_serialize():
    """Two IPIs to the same core queue on the core resource (paper §5.3)."""
    eng, node = make_node()
    v1 = node.intc.allocate_vector(0)
    v2 = node.intc.allocate_vector(0)
    log = []

    def handler(tag):
        def run(_payload):
            log.append((tag, "start", eng.now))
            yield eng.sleep(1000)
            log.append((tag, "end", eng.now))

        return run

    node.intc.register(v1, handler("a"))
    node.intc.register(v2, handler("b"))
    node.intc.post_ipi(v1)
    node.intc.post_ipi(v2)
    eng.run()
    lat = node.costs.ipi_latency_ns
    assert log == [
        ("a", "start", lat),
        ("a", "end", lat + 1000),
        ("b", "start", lat + 1000),
        ("b", "end", lat + 2000),
    ]


def test_handlers_on_different_cores_run_concurrently():
    eng, node = make_node()
    v1 = node.intc.allocate_vector(0)
    v2 = node.intc.allocate_vector(1)
    ends = []

    def handler(_payload):
        yield eng.sleep(1000)
        ends.append(eng.now)

    node.intc.register(v1, handler)
    node.intc.register(v2, handler)
    node.intc.post_ipi(v1)
    node.intc.post_ipi(v2)
    eng.run()
    lat = node.costs.ipi_latency_ns
    assert ends == [lat + 1000, lat + 1000]


def test_unregister_then_send_fails():
    eng, node = make_node()
    vec = node.intc.allocate_vector(0)

    def handler(_):
        yield from ()

    node.intc.register(vec, handler)
    node.intc.unregister(vec)

    def sender():
        yield from node.intc.send_ipi(vec)

    with pytest.raises(RuntimeError):
        eng.run_process(sender())
