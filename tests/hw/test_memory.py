"""Unit tests for physical memory, frame allocation, and mapped regions."""

import numpy as np
import pytest

from repro.hw import (
    FrameAllocator,
    FrameRange,
    OutOfMemoryError,
    PhysicalMemory,
)
from repro.hw.costs import MB, PAGE_4K
from repro.hw.memory import pfns_to_ranges, ranges_to_pfns


# -- FrameRange ---------------------------------------------------------------


def test_frame_range_properties():
    r = FrameRange(10, 5)
    assert r.end_pfn == 15
    assert r.nbytes == 5 * PAGE_4K
    assert list(r.pfns()) == [10, 11, 12, 13, 14]


def test_frame_range_validation():
    with pytest.raises(ValueError):
        FrameRange(0, 0)
    with pytest.raises(ValueError):
        FrameRange(-1, 1)


def test_frame_range_overlap():
    assert FrameRange(0, 10).overlaps(FrameRange(9, 1))
    assert not FrameRange(0, 10).overlaps(FrameRange(10, 1))


def test_ranges_pfns_roundtrip():
    ranges = [FrameRange(0, 3), FrameRange(10, 2), FrameRange(12, 1)]
    pfns = ranges_to_pfns(ranges)
    assert list(pfns) == [0, 1, 2, 10, 11, 12]
    # 10,11,12 coalesce into one run on the way back
    back = pfns_to_ranges(pfns)
    assert back == [FrameRange(0, 3), FrameRange(10, 3)]


def test_empty_ranges_to_pfns():
    assert len(ranges_to_pfns([])) == 0
    assert pfns_to_ranges(np.empty(0, dtype=np.int64)) == []


# -- FrameAllocator -----------------------------------------------------------


def test_alloc_contiguous_first_fit():
    a = FrameAllocator(0, 100)
    r1 = a.alloc(10)
    r2 = a.alloc(20)
    assert (r1.start_pfn, r1.nframes) == (0, 10)
    assert (r2.start_pfn, r2.nframes) == (10, 20)
    assert a.free_frames == 70
    assert a.used_frames == 30


def test_alloc_exhaustion():
    a = FrameAllocator(0, 10)
    a.alloc(10)
    with pytest.raises(OutOfMemoryError):
        a.alloc(1)


def test_alloc_contiguous_fails_on_fragmentation():
    a = FrameAllocator(0, 30)
    r1 = a.alloc(10)
    r2 = a.alloc(10)
    r3 = a.alloc(10)
    a.free(r1)
    a.free(r3)
    # 20 frames free but max contiguous run is 10
    assert a.free_frames == 20
    with pytest.raises(OutOfMemoryError):
        a.alloc(15)
    del r2


def test_free_coalesces():
    a = FrameAllocator(0, 30)
    r1 = a.alloc(10)
    r2 = a.alloc(10)
    r3 = a.alloc(10)
    a.free(r1)
    a.free(r3)
    a.free(r2)  # bridges both neighbours
    assert a.free_frames == 30
    assert a.alloc(30).nframes == 30


def test_double_free_detected():
    a = FrameAllocator(0, 10)
    r = a.alloc(5)
    a.free(r)
    with pytest.raises(ValueError, match="double free"):
        a.free(r)


def test_free_outside_window_rejected():
    a = FrameAllocator(100, 10)
    with pytest.raises(ValueError, match="outside"):
        a.free(FrameRange(0, 5))


def test_alloc_pages_spans_fragments():
    a = FrameAllocator(0, 30)
    r1 = a.alloc(10)
    _r2 = a.alloc(10)
    r3 = a.alloc(10)
    a.free(r1)
    a.free(r3)
    got = a.alloc_pages(15)
    assert sum(r.nframes for r in got) == 15
    assert got[0] == FrameRange(0, 10)
    assert got[1] == FrameRange(20, 5)


def test_alloc_scattered_is_single_frames():
    a = FrameAllocator(0, 16)
    got = a.alloc_scattered(5)
    assert all(r.nframes == 1 for r in got)
    assert len(got) == 5


def test_alloc_pages_insufficient():
    a = FrameAllocator(0, 10)
    with pytest.raises(OutOfMemoryError):
        a.alloc_pages(11)


def test_allocator_reuse_cycle():
    a = FrameAllocator(0, 64)
    for _ in range(50):
        got = a.alloc_pages(64, max_run=7)
        a.free_all(got)
    assert a.free_frames == 64
    assert a.alloc(64).nframes == 64


# -- PhysicalMemory and NUMA ----------------------------------------------------


def test_numa_zone_layout():
    mem = PhysicalMemory([16 * MB, 16 * MB])
    assert mem.total_frames == 2 * 16 * MB // PAGE_4K
    z0, z1 = mem.zones
    assert z0.start_pfn == 0
    assert z1.start_pfn == z0.nframes
    assert mem.zone_of_pfn(0) is z0
    assert mem.zone_of_pfn(z1.start_pfn) is z1


def test_zone_of_bad_pfn():
    mem = PhysicalMemory([1 * MB])
    with pytest.raises(ValueError):
        mem.zone_of_pfn(10**9)


def test_bad_zone_sizes_rejected():
    with pytest.raises(ValueError):
        PhysicalMemory([])
    with pytest.raises(ValueError):
        PhysicalMemory([PAGE_4K + 1])


def test_frame_view_is_writable_and_aliases():
    mem = PhysicalMemory([1 * MB])
    view = mem.frame_view(3)
    view[:] = 0xAB
    again = mem.frame_view(3)
    assert (again == 0xAB).all()
    assert (mem.frame_view(2) == 0).all()  # neighbour untouched, zero-filled


def test_backing_store_is_sparse():
    mem = PhysicalMemory([1024 * MB])
    assert mem.resident_frames == 0
    mem.frame_view(7)[:] = 1
    assert mem.resident_frames == 1


def test_frame_view_bounds():
    mem = PhysicalMemory([1 * MB])
    with pytest.raises(ValueError):
        mem.frame_view(-1)
    with pytest.raises(ValueError):
        mem.frame_view(mem.total_frames)


# -- MappedRegion ----------------------------------------------------------------


def make_region(nframes=4, scattered=True):
    mem = PhysicalMemory([4 * MB])
    alloc = mem.zones[0].allocator
    ranges = alloc.alloc_scattered(nframes) if scattered else [alloc.alloc(nframes)]
    return mem, mem.map_region(ranges_to_pfns(ranges))


def test_region_write_read_roundtrip():
    _mem, region = make_region()
    data = bytes(range(256)) * 32  # 8 KiB, crosses page boundary
    region.write(100, data)
    assert region.read(100, len(data)) == data


def test_region_write_spanning_pages():
    _mem, region = make_region(nframes=2)
    data = b"x" * PAGE_4K + b"y" * 10
    region.write(PAGE_4K - 5, data[: PAGE_4K + 5])
    assert region.read(PAGE_4K - 5, PAGE_4K + 5) == data[: PAGE_4K + 5]


def test_region_bounds_checked():
    _mem, region = make_region(nframes=1)
    with pytest.raises(ValueError):
        region.read(PAGE_4K, 1)
    with pytest.raises(ValueError):
        region.write(-1, b"a")
    with pytest.raises(ValueError):
        region.read(0, PAGE_4K + 1)


def test_two_mappings_alias_same_frames():
    """The zero-copy property: aliased mappings see each other's stores."""
    mem, region = make_region(nframes=3)
    alias = mem.map_region(region.pfns)
    region.write(5000, b"hello enclave")
    assert alias.read(5000, 13) == b"hello enclave"
    alias.write(0, b"reply")
    assert region.read(0, 5) == b"reply"


def test_mapping_with_permuted_pfns_differs():
    mem, region = make_region(nframes=2)
    swapped = mem.map_region(region.pfns[::-1])
    region.write(0, b"A")  # page 0 of region = page 1 of swapped
    assert swapped.read(PAGE_4K, 1) == b"A"


def test_region_fill_and_checksum():
    _mem, region = make_region(nframes=2)
    region.fill(0)
    c0 = region.checksum()
    region.write(123, b"\x01")
    assert region.checksum() != c0


def test_as_array_gathers_everything():
    _mem, region = make_region(nframes=2)
    region.write(0, b"\x11" * PAGE_4K)
    region.write(PAGE_4K, b"\x22" * PAGE_4K)
    arr = region.as_array()
    assert arr.shape == (2 * PAGE_4K,)
    assert (arr[:PAGE_4K] == 0x11).all()
    assert (arr[PAGE_4K:] == 0x22).all()


def test_empty_mapping_rejected():
    mem = PhysicalMemory([1 * MB])
    with pytest.raises(ValueError):
        mem.map_region(np.empty(0, dtype=np.int64))


def test_mapping_outside_memory_rejected():
    mem = PhysicalMemory([1 * MB])
    with pytest.raises(ValueError):
        mem.map_region(np.array([mem.total_frames], dtype=np.int64))
