"""Unit tests for node topology, cores, steal logs, and specs."""

import pytest

from repro.hw import NodeHardware, OPTIPLEX_SPEC, R420_SPEC
from repro.hw.costs import GB
from repro.sim import Engine


def test_r420_spec_matches_paper():
    # §5.1: dual-socket 6-core with HT = 24 threads, 2x16 GB NUMA
    assert R420_SPEC.total_threads == 24
    assert R420_SPEC.total_memory_bytes == 32 * GB
    assert R420_SPEC.sockets == 2


def test_optiplex_spec_matches_paper():
    # §6.3: single-socket 4-core with HT = 8 threads, 8 GB
    assert OPTIPLEX_SPEC.total_threads == 8
    assert OPTIPLEX_SPEC.total_memory_bytes == 8 * GB


def test_node_assembly():
    eng = Engine()
    node = NodeHardware(eng, R420_SPEC)
    assert len(node.cores) == 24
    assert len(node.sockets) == 2
    assert len(node.socket_cores(0)) == 12
    assert node.memory.total_bytes == 32 * GB
    assert len(node.memory.zones) == 2
    # socket i's cores point at socket i
    assert all(c.socket_id == 0 for c in node.socket_cores(0))
    assert all(c.socket_id == 1 for c in node.socket_cores(1))


def test_core_ids_are_global_and_ordered():
    eng = Engine()
    node = NodeHardware(eng, R420_SPEC)
    assert [c.core_id for c in node.cores] == list(range(24))
    assert node.core(5) is node.cores[5]


def test_free_cores_tracks_ownership():
    eng = Engine()
    node = NodeHardware(eng, OPTIPLEX_SPEC)
    assert len(node.free_cores()) == 8
    node.cores[0].owner = "linux"
    assert len(node.free_cores()) == 7


def test_core_occupy_logs_steal():
    eng = Engine()
    node = NodeHardware(eng, OPTIPLEX_SPEC)
    core = node.core(0)

    def proc():
        yield eng.sleep(100)
        yield from core.occupy(500, "xemem-walk")

    eng.run_process(proc())
    assert core.steal_log == [(100, 500, "xemem-walk")]


def test_core_occupy_serializes():
    eng = Engine()
    node = NodeHardware(eng, OPTIPLEX_SPEC)
    core = node.core(0)

    def worker():
        yield from core.occupy(100, "w")

    eng.spawn(worker())
    eng.spawn(worker())
    eng.run()
    starts = sorted(s for s, _d, _t in core.steal_log)
    assert starts == [0, 100]


def test_stolen_between_window_clipping():
    eng = Engine()
    node = NodeHardware(eng, OPTIPLEX_SPEC)
    core = node.core(0)
    core.log_steal(100, 50, "a")   # [100,150)
    core.log_steal(300, 100, "b")  # [300,400)
    assert core.stolen_between(0, 1000) == 150
    assert core.stolen_between(120, 320) == 30 + 20
    assert core.stolen_between(150, 300) == 0
    assert core.stolen_between(0, 1000, tags=["b"]) == 100


def test_negative_steal_rejected():
    eng = Engine()
    node = NodeHardware(eng, OPTIPLEX_SPEC)
    with pytest.raises(ValueError):
        node.core(0).log_steal(0, -1, "x")
