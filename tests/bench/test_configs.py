"""Tests for the standard experiment rigs."""

import pytest

from repro.bench.configs import (
    ANALYTICS_SLOWDOWN,
    INSITU_CONFIG_NAMES,
    build_cokernel_system,
    build_insitu_rig,
)
from repro.hw.costs import GB, MB
from repro.workloads.hpccg import HpccgProblem
from repro.workloads.insitu import InSituConfig


def test_cokernel_rig_shape():
    rig = build_cokernel_system(num_cokernels=2)
    assert rig.linux.kernel.kernel_type == "linux"
    assert len(rig.cokernels) == 2
    assert rig.system.cokernel_count == 2
    # co-kernels are single-core, per the Fig. 6 configuration
    for enclave in rig.cokernels:
        assert len(enclave.kernel.cores) == 1
    # discovery ran
    assert all(e.enclave_id is not None for e in rig.system.enclaves)


def test_cokernel_rig_numa_split():
    rig = build_cokernel_system(num_cokernels=1)
    linux_zone = rig.node.memory.zone_of_pfn(rig.linux.kernel.allocator.start_pfn)
    kitten_zone = rig.node.memory.zone_of_pfn(
        rig.cokernels[0].kernel.allocator.start_pfn
    )
    assert linux_zone.zone_id == 0
    assert kitten_zone.zone_id == 1


def test_cokernel_rig_with_noise():
    rig = build_cokernel_system(num_cokernels=1, with_noise=True, seed=3)
    kitten = rig.cokernels[0].kernel
    assert kitten.noise_sources  # installed


def test_vm_on_kitten_gets_extra_memory():
    rig = build_cokernel_system(num_cokernels=1, with_vm=True, vm_host="kitten")
    assert rig.vm is not None
    assert rig.vm.kernel.virtualized


@pytest.mark.parametrize("name", INSITU_CONFIG_NAMES)
def test_insitu_rig_analytics_slowdown_applied(name):
    cfg = InSituConfig(iterations=20, comm_interval=20, data_bytes=4 * MB,
                       problem=HpccgProblem(8, 8, 8))
    rig = build_insitu_rig(name, cfg, seed=1)
    assert cfg.analytics_slowdown == ANALYTICS_SLOWDOWN[name]
    wl = rig["workload"]
    if name == "linux_linux":
        assert wl.sim_enclave is wl.analytics_enclave
    else:
        assert wl.sim_enclave is not wl.analytics_enclave
    if name.startswith("kitten"):
        assert wl.sim_enclave.kernel.kernel_type == "kitten"
    if "vm" in name:
        assert getattr(wl.analytics_enclave.kernel, "virtualized", False)
