"""Small-scale exercises of every figure generator (fast; the real runs
live in benchmarks/). These pin the generators' data shapes and
determinism so benchmark failures can be triaged to model vs harness."""

import pytest

from repro.bench.figures import (
    fig5_throughput,
    fig6_scalability,
    fig7_noise,
    fig8_single_node,
    fig9_multi_node,
    table2_vm_throughput,
)
from repro.hw.costs import GB, MB
from repro.workloads.hpccg import HpccgProblem


def test_fig5_shape_small():
    r = fig5_throughput(reps=2, sizes=(64 * MB, 128 * MB))
    assert len(r.attach_gib_s) == len(r.sizes_bytes) == 2
    assert all(x > 0 for x in r.attach_gib_s + r.attach_read_gib_s + r.rdma_gib_s)


def test_fig5_deterministic():
    a = fig5_throughput(reps=2, sizes=(64 * MB,))
    b = fig5_throughput(reps=2, sizes=(64 * MB,))
    assert a.attach_gib_s == b.attach_gib_s
    assert a.rdma_gib_s == b.rdma_gib_s


def test_fig6_shape_small():
    r = fig6_scalability(reps=2, enclave_counts=(1, 2), sizes=(64 * MB,))
    assert r.enclave_counts == [1, 2]
    assert len(r.throughput[64 * MB]) == 2


def test_table2_shape_small():
    r = table2_vm_throughput(reps=1, size_bytes=64 * MB)
    assert len(r.rows) == 3
    pairs = {(row.exporting, row.attaching) for row in r.rows}
    assert pairs == {
        ("Kitten", "Linux"),
        ("Kitten", "Linux (VM)"),
        ("Linux (VM)", "Kitten"),
    }
    vm_row = next(row for row in r.rows if row.attaching == "Linux (VM)")
    assert vm_row.gib_s_without_rb is not None
    assert vm_row.gib_s_without_rb > vm_row.gib_s


def test_fig7_shape_small():
    r = fig7_noise(duration_s=2, attach_sizes=(4096, 2 * MB))
    assert set(r.attach_detour_us) == {"4KB", "2MB"}
    assert r.detours  # something happened
    assert all(t < 2.0 for t, _d, _s in r.detours)


def test_fig8_shape_small():
    r = fig8_single_node(
        runs=1,
        configs=("kitten_linux",),
        executions=("async",),
        attaches=("one_time",),
        iterations=40,
        comm_interval=20,
        data_bytes=8 * MB,
    )
    assert len(r.cells) == 1
    cell = r.cell("kitten_linux", "async", "one_time")
    assert cell.mean_s > 0
    with pytest.raises(KeyError):
        r.cell("nope", "async", "one_time")


def test_fig9_shape_small():
    r = fig9_multi_node(
        runs=1,
        node_counts=(1, 2),
        modes=("multi_enclave",),
        attaches=("one_time",),
        iterations=20,
        comm_interval=10,
        data_bytes=8 * MB,
    )
    series = r.series("multi_enclave", "one_time")
    assert [p.nodes for p in series] == [1, 2]
    assert all(p.mean_s > 0 for p in series)
