"""Tests for the attach-latency decomposition tool."""

import pytest

from repro.bench.explain import explain_native_attach, explain_vm_attach
from repro.hw.costs import MB


def test_native_breakdown_is_exhaustive():
    b = explain_native_attach(size_bytes=64 * MB)
    # every nanosecond accounted for (within 2%)
    assert abs(b.unattributed_ns) / b.measured_ns < 0.02
    names = [s for s, _ns in b.stages]
    assert "exporter page-table walk" in names
    # install dominates the native path
    shares = {s: ns / b.measured_ns for s, ns in b.stages}
    assert shares["attacher PTE install (remap_pfn_range)"] > 0.4
    assert 12.0 < b.gib_s < 14.0


def test_vm_breakdown_shows_insert_dominance():
    b = explain_vm_attach(size_bytes=64 * MB)
    assert abs(b.unattributed_ns) / b.measured_ns < 0.02
    shares = {s: ns / b.measured_ns for s, ns in b.stages}
    insert_stage = next(s for s in shares if s.startswith("VMM memory-map inserts"))
    # the §5.4 observation: map updates dominate the VM attach path
    assert shares[insert_stage] > 0.4
    assert b.gib_s < 6.0


def test_vm_breakdown_radix_backend_shrinks_inserts():
    rb = explain_vm_attach(size_bytes=32 * MB)
    radix = explain_vm_attach(size_bytes=32 * MB, memmap_backend="radix")

    def insert_ns(b):
        return next(ns for s, ns in b.stages if "memory-map inserts" in s)

    assert insert_ns(radix) < insert_ns(rb) / 3
    assert radix.measured_ns < rb.measured_ns


def test_rows_render_total():
    b = explain_native_attach(size_bytes=16 * MB)
    rows = b.rows()
    assert rows[-1][0] == "TOTAL"
    assert rows[-1][2] == "100.0%"
