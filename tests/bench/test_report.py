"""Tests for the text report renderer."""

from repro.bench.report import render_series, render_table


def test_render_table_alignment_and_floats():
    text = render_table(
        ["name", "value"],
        [["alpha", 1.23456], ["b", 7]],
        title="Title",
    )
    lines = text.splitlines()
    assert lines[0] == "Title"
    assert "name" in lines[1] and "value" in lines[1]
    assert "-+-" in lines[2]
    assert "1.235" in text  # floats at 3 decimals
    assert "7" in text
    # columns align: header and rows have the same width
    assert len(set(len(line) for line in lines[1:])) <= 2


def test_render_series_column_per_name():
    text = render_series(
        {"a": [1.0, 2.0], "b": [3.0, 4.0]},
        x_label="n",
        xs=[10, 20],
    )
    assert "n" in text and "a" in text and "b" in text
    assert "10" in text and "4.000" in text


def test_render_table_empty_rows():
    text = render_table(["x"], [])
    assert "x" in text


def test_render_bars_scaling_and_baseline():
    from repro.bench.report import render_bars

    text = render_bars(
        [("short", 140.0), ("long", 160.0)], width=10, unit="s", baseline=140.0
    )
    lines = text.splitlines()
    assert lines[0].count("#") == 0        # at the baseline
    assert lines[1].count("#") == 10       # full width at the max
    assert "160.00s" in lines[1]
    assert "bars start at 140" in lines[2]


def test_render_bars_validation():
    from repro.bench.report import render_bars
    import pytest

    with pytest.raises(ValueError):
        render_bars([])
    with pytest.raises(ValueError):
        render_bars([("a", 1.0)], baseline=2.0)
