"""Tests for the ASCII plot renderers."""

import pytest

from repro.bench.plot import render_lines, render_scatter


def test_scatter_places_extremes():
    text = render_scatter(
        {"a": [(0.0, 1.0), (10.0, 100.0)]},
        width=20, height=10,
    )
    lines = [l for l in text.splitlines() if "|" in l]
    # max lands on the top row, min on the bottom row
    assert "o" in lines[0]
    assert "o" in lines[-1]
    top = lines[0].split("|", 1)[1]
    bottom = lines[-1].split("|", 1)[1]
    assert top.rstrip().endswith("o")      # max at max x
    assert bottom.strip().startswith("o")  # min at min x


def test_scatter_log_scale_axis_labels():
    text = render_scatter(
        {"s": [(0.0, 1.0), (1.0, 10_000.0)]},
        log_y=True,
    )
    assert "10^4.0" in text
    assert "10^0.0" in text


def test_scatter_legend_and_marks():
    text = render_scatter(
        {"alpha": [(0, 1)], "beta": [(1, 2)]},
    )
    assert "o=alpha" in text and "x=beta" in text


def test_scatter_validation():
    with pytest.raises(ValueError):
        render_scatter({})
    with pytest.raises(ValueError):
        render_scatter({"a": [(0.0, -1.0)]}, log_y=True)


def test_render_lines_wrapper():
    text = render_lines({"up": [1.0, 2.0, 3.0]}, xs=[1, 2, 4], title="T")
    assert text.startswith("T")
    assert "o=up" in text


def test_degenerate_single_point():
    text = render_scatter({"p": [(5.0, 7.0)]})
    assert "o" in text
