"""Unit + property tests for the radix-map backend (ablation A)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.virt.radixmap import RadixMap


def test_insert_get_delete_roundtrip():
    m = RadixMap()
    m.insert(12345, "v")
    assert m.get(12345) == "v"
    assert 12345 in m and 12346 not in m
    assert m.delete(12345) == "v"
    assert len(m) == 0
    with pytest.raises(KeyError):
        m.get(12345)


def test_duplicate_rejected():
    m = RadixMap()
    m.insert(1, "a")
    with pytest.raises(KeyError):
        m.insert(1, "b")


def test_delete_missing_raises():
    m = RadixMap()
    with pytest.raises(KeyError):
        m.delete(5)


def test_key_space_bounds():
    m = RadixMap()
    with pytest.raises(ValueError):
        m.insert(-1, None)
    with pytest.raises(ValueError):
        m.insert(1 << 36, None)
    m.insert((1 << 36) - 1, "edge")
    assert m.get((1 << 36) - 1) == "edge"


def test_items_sorted_and_min_key():
    m = RadixMap()
    for k in [900, 5, 100_000, 37]:
        m.insert(k, k)
    assert m.keys() == [5, 37, 900, 100_000]
    assert m.min_key() == 5


def test_floor():
    m = RadixMap()
    for k in [10, 20, 30]:
        m.insert(k, f"v{k}")
    assert m.floor(5) is None
    assert m.floor(20) == (20, "v20")
    assert m.floor(25) == (20, "v20")


def test_constant_levels_per_operation():
    """The paper's future-work claim: no growth-dependent cost."""
    m = RadixMap()
    m.insert(0, None)
    first = m.levels_touched
    for k in range(1, 50_000):
        m.insert(k, None)
    per_insert = (m.levels_touched - first) / (50_000 - 1)
    assert per_insert == 4.0  # exactly four levels, always


def test_interior_pruning_keeps_iteration_fast():
    m = RadixMap()
    for k in range(0, 1 << 20, 1 << 10):
        m.insert(k, None)
    for k in range(0, 1 << 20, 1 << 10):
        m.delete(k)
    assert len(m) == 0
    assert m.keys() == []
    assert m.root == {}


@settings(max_examples=50, deadline=None)
@given(st.dictionaries(st.integers(0, (1 << 36) - 1), st.integers(), min_size=1, max_size=200))
def test_property_matches_dict(d):
    m = RadixMap()
    for k, v in d.items():
        m.insert(k, v)
    assert len(m) == len(d)
    assert m.keys() == sorted(d)
    for k, v in d.items():
        assert m.get(k) == v
    for k in list(d):
        m.delete(k)
    assert len(m) == 0
