"""Unit tests for the VMM memory map (both backends)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.costs import CostModel
from repro.virt.memmap import MapEntry, TranslationError, VmmMemoryMap


@pytest.fixture(params=["rbtree", "radix"])
def mmap(request):
    # coalescing maps keep entry counts in run units; the per-page
    # default (shipped-Palacios behaviour) has its own tests below
    return VmmMemoryMap(CostModel(), backend=request.param, coalesce=True)


def test_map_entry_translate():
    e = MapEntry(100, 10, 5000)
    assert e.translate(100) == 5000
    assert e.translate(109) == 5009
    with pytest.raises(KeyError):
        e.translate(110)


def test_unknown_backend_rejected():
    with pytest.raises(ValueError):
        VmmMemoryMap(CostModel(), backend="avl")


def test_contiguous_hpa_makes_one_entry(mmap):
    work = mmap.insert_mapping(0, np.arange(1000, 1512, dtype=np.int64))
    assert mmap.num_entries == 1
    assert work > 0
    assert mmap.translate(0) == 1000
    assert mmap.translate(511) == 1511


def test_scattered_hpa_makes_entry_per_page(mmap):
    hpas = np.arange(1000, 1064, 2, dtype=np.int64)  # 32 discontiguous pages
    mmap.insert_mapping(0, hpas)
    assert mmap.num_entries == 32
    for i, h in enumerate(hpas):
        assert mmap.translate(i) == h


def test_overlap_rejected(mmap):
    mmap.insert_mapping(10, np.arange(100, 110, dtype=np.int64))
    with pytest.raises(ValueError, match="overlaps"):
        mmap.insert_mapping(15, np.arange(200, 210, dtype=np.int64))
    with pytest.raises(ValueError, match="overlaps"):
        mmap.insert_mapping(5, np.arange(200, 210, dtype=np.int64))
    # adjacent is fine
    mmap.insert_mapping(20, np.arange(200, 210, dtype=np.int64))


def test_translate_unmapped_raises(mmap):
    mmap.insert_mapping(10, np.arange(100, 110, dtype=np.int64))
    with pytest.raises(TranslationError):
        mmap.translate(9)
    with pytest.raises(TranslationError):
        mmap.translate(20)
    with pytest.raises(TranslationError):
        mmap.translate_array(np.array([10, 25]))


def test_translate_array_matches_scalar(mmap):
    hpas = np.array([50, 51, 52, 90, 91, 200], dtype=np.int64)
    mmap.insert_mapping(0, hpas)
    got = mmap.translate_array(np.arange(6, dtype=np.int64))
    assert (got == hpas).all()
    scalar = [mmap.translate(i) for i in range(6)]
    assert scalar == list(hpas)


def test_cache_hit_accounting(mmap):
    mmap.insert_mapping(0, np.arange(1000, 1512, dtype=np.int64))  # one run
    mmap.cache_hits = mmap.cache_misses = 0
    mmap.translate(0)   # miss (cold cache)
    mmap.translate(1)   # hit
    mmap.translate(2)   # hit
    assert mmap.cache_misses == 1
    assert mmap.cache_hits == 2


def test_translate_array_cache_accounting(mmap):
    mmap.insert_mapping(0, np.arange(1000, 1512, dtype=np.int64))
    mmap.cache_hits = mmap.cache_misses = 0
    mmap.translate_array(np.arange(512, dtype=np.int64))
    assert mmap.cache_misses == 1  # single run: one real lookup
    assert mmap.cache_hits == 511
    # warm cache: a second walk over the same run has zero misses
    mmap.translate_array(np.arange(512, dtype=np.int64))
    assert mmap.cache_misses == 1


def test_remove_mapping_roundtrip(mmap):
    hpas = np.arange(1000, 1032, 2, dtype=np.int64)
    mmap.insert_mapping(0, hpas)
    n = mmap.num_entries
    work = mmap.remove_mapping(0, 16)
    assert work > 0
    assert mmap.num_entries == 0
    with pytest.raises(TranslationError):
        mmap.translate(0)
    del n


def test_remove_partial_range_rejected(mmap):
    mmap.insert_mapping(0, np.arange(100, 110, dtype=np.int64))
    with pytest.raises(KeyError):
        mmap.remove_mapping(0, 5)


def test_max_gpa_pfn(mmap):
    assert mmap.max_gpa_pfn() == 0
    mmap.insert_mapping(100, np.arange(5, dtype=np.int64) + 50)
    assert mmap.max_gpa_pfn() == 105


def test_rb_insert_work_grows_with_scatter():
    """Under coalescing, scattered host frames mean many entries mean
    more tree work; contiguous frames collapse to one entry."""
    costs = CostModel()
    contiguous = VmmMemoryMap(costs, backend="rbtree", coalesce=True)
    w_contig = contiguous.insert_mapping(0, np.arange(4096, dtype=np.int64) + 10_000)
    scattered = VmmMemoryMap(costs, backend="rbtree", coalesce=True)
    w_scatter = scattered.insert_mapping(
        0, np.arange(0, 8192, 2, dtype=np.int64) + 10_000
    )
    assert w_scatter > 50 * w_contig


def test_default_palacios_inserts_per_page():
    """The shipped behaviour the paper measures (§5.4): one tree entry per
    delivered PFN, even when the host frames are contiguous."""
    costs = CostModel()
    mm = VmmMemoryMap(costs, backend="rbtree")  # coalesce defaults False
    contiguous = np.arange(4096, dtype=np.int64) + 10_000
    work = mm.insert_mapping(0, contiguous)
    assert mm.num_entries == 4096
    # same translations as a coalesced map
    assert (mm.translate_array(np.arange(4096, dtype=np.int64)) == contiguous).all()
    # and the work matches a scattered coalesced insert of equal size
    scattered = VmmMemoryMap(costs, backend="rbtree", coalesce=True)
    w_scatter = scattered.insert_mapping(
        0, np.arange(0, 8192, 2, dtype=np.int64) + 10_000
    )
    assert abs(work - w_scatter) / w_scatter < 0.1


def test_ablation_coalescing_removes_insert_work():
    """Ablation C: coalescing contiguous exports recovers native-like cost."""
    costs = CostModel()
    contiguous = np.arange(262144 // 16, dtype=np.int64) + 10_000
    per_page = VmmMemoryMap(costs, backend="rbtree", coalesce=False)
    merged = VmmMemoryMap(costs, backend="rbtree", coalesce=True)
    w_pp = per_page.insert_mapping(0, contiguous)
    w_m = merged.insert_mapping(0, contiguous)
    assert w_m < w_pp / 1000


def test_radix_beats_rbtree_on_scattered_inserts():
    """Ablation A's premise, at the data-structure level."""
    costs = CostModel()
    hpas = np.arange(0, 65536, 2, dtype=np.int64)  # 32768 scattered pages
    rb = VmmMemoryMap(costs, backend="rbtree")
    radix = VmmMemoryMap(costs, backend="radix")
    w_rb = rb.insert_mapping(0, hpas)
    w_radix = radix.insert_mapping(0, hpas)
    assert w_radix < w_rb / 3


def test_peek_translate_array_costs_nothing(mmap):
    mmap.insert_mapping(0, np.arange(100, 110, dtype=np.int64))
    before = mmap.total_work_ns
    got = mmap.peek_translate_array(np.arange(10, dtype=np.int64))
    assert (got == np.arange(100, 110)).all()
    assert mmap.total_work_ns == before
    with pytest.raises(TranslationError):
        mmap.peek_translate_array(np.array([99]))


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(0, 5000), unique=True, min_size=1, max_size=150))
def test_property_translation_is_exact(hpa_list):
    mmap = VmmMemoryMap(CostModel(), backend="rbtree")
    hpas = np.array(sorted(hpa_list), dtype=np.int64)
    mmap.insert_mapping(0, hpas)
    got = mmap.translate_array(np.arange(len(hpas), dtype=np.int64))
    assert (got == hpas).all()
    peek = mmap.peek_translate_array(np.arange(len(hpas), dtype=np.int64))
    assert (peek == hpas).all()
