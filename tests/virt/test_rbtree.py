"""Unit + property tests for the red-black tree."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.virt.rbtree import RedBlackTree


def test_insert_get_roundtrip():
    t = RedBlackTree()
    for k in [5, 1, 9, 3, 7]:
        t.insert(k, k * 10)
    assert len(t) == 5
    for k in [5, 1, 9, 3, 7]:
        assert t.get(k) == k * 10
    assert 3 in t and 4 not in t


def test_get_missing_raises():
    t = RedBlackTree()
    with pytest.raises(KeyError):
        t.get(1)


def test_duplicate_insert_rejected():
    t = RedBlackTree()
    t.insert(1, "a")
    with pytest.raises(KeyError):
        t.insert(1, "b")


def test_items_sorted():
    t = RedBlackTree()
    for k in [5, 1, 9, 3, 7]:
        t.insert(k, None)
    assert t.keys() == [1, 3, 5, 7, 9]


def test_floor_semantics():
    t = RedBlackTree()
    for k in [10, 20, 30]:
        t.insert(k, f"v{k}")
    assert t.floor(5) is None
    assert t.floor(10) == (10, "v10")
    assert t.floor(25) == (20, "v20")
    assert t.floor(99) == (30, "v30")


def test_min_key():
    t = RedBlackTree()
    assert t.min_key() is None
    for k in [7, 3, 9]:
        t.insert(k, None)
    assert t.min_key() == 3


def test_delete_returns_value_and_removes():
    t = RedBlackTree()
    for k in range(20):
        t.insert(k, k)
    assert t.delete(7) == 7
    assert 7 not in t
    assert len(t) == 19
    t.validate()
    with pytest.raises(KeyError):
        t.delete(7)


def test_invariants_hold_under_sequential_inserts():
    t = RedBlackTree()
    for k in range(1000):
        t.insert(k, None)
    t.validate()
    assert t.keys() == list(range(1000))


def test_visit_count_grows_logarithmically():
    """The Table 2 mechanism: per-insert work grows with tree size."""

    def avg_visits_for(n):
        t = RedBlackTree()
        for k in range(n):
            t.insert(k, None)
        return t.visits / n

    small, large = avg_visits_for(256), avg_visits_for(16384)
    assert large > small * 1.3  # grows...
    assert large < small * 4.0  # ...but sub-linearly (logarithmic-ish)


def test_depth_is_balanced():
    t = RedBlackTree()
    n = 4096
    for k in range(n):  # adversarial: sorted order
        t.insert(k, None)

    def depth(node):
        if node is t.nil:
            return 0
        return 1 + max(depth(node.left), depth(node.right))

    assert depth(t.root) <= 2 * math.log2(n + 1) + 1


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(0, 10_000), unique=True, min_size=1, max_size=300))
def test_property_inserts_preserve_invariants(keys):
    t = RedBlackTree()
    for k in keys:
        t.insert(k, k)
    t.validate()
    assert t.keys() == sorted(keys)


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.integers(0, 1000), unique=True, min_size=2, max_size=200),
    st.data(),
)
def test_property_mixed_insert_delete(keys, data):
    t = RedBlackTree()
    for k in keys:
        t.insert(k, k)
    doomed = data.draw(
        st.lists(st.sampled_from(keys), unique=True, min_size=1, max_size=len(keys))
    )
    for k in doomed:
        t.delete(k)
        t.validate()
    survivors = sorted(set(keys) - set(doomed))
    assert t.keys() == survivors
    assert len(t) == len(survivors)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(0, 10_000), unique=True, min_size=1, max_size=200),
       st.integers(0, 10_000))
def test_property_floor_matches_reference(keys, query):
    t = RedBlackTree()
    for k in keys:
        t.insert(k, str(k))
    below = [k for k in keys if k <= query]
    expected = (max(below), str(max(below))) if below else None
    assert t.floor(query) == expected
