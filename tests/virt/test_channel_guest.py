"""Direct tests for PalaciosChannel transfer semantics and multi-VM hosting."""

import numpy as np
import pytest

from repro.enclave import EnclaveSystem, KernelMessage
from repro.hw import NodeHardware, R420_SPEC
from repro.hw.costs import GB, MB
from repro.pisces import PiscesManager
from repro.sim import Engine
from repro.xemem import XpmemApi, install_xemem


def build_host_and_vm(num_vms=1):
    eng = Engine()
    node = NodeHardware(eng, R420_SPEC)
    pisces = PiscesManager(node)
    linux = pisces.boot_linux(core_ids=range(0, 8), mem_bytes=12 * GB)
    vms = [
        pisces.boot_vm(linux, core_ids=[16 + 2 * i, 17 + 2 * i],
                       ram_bytes=1 * GB, name=f"vm{i}")
        for i in range(num_vms)
    ]
    return eng, node, pisces, linux, vms


def test_host_to_guest_translates_pfns_to_gpa():
    eng, _node, _pisces, linux, (vm,) = build_host_and_vm()
    vmm = vm.kernel.vmm
    got = []
    vm.set_receiver(lambda msg, ch: got.append(msg))
    linux.set_receiver(lambda msg, ch: got.append(msg))
    channel = vm.channels[0]
    hpas = linux.kernel.alloc_pfns(16, scattered=True)

    def send():
        yield from channel.send(linux, KernelMessage("attach_resp", pfns=hpas))

    eng.run_process(send())
    assert len(got) == 1
    delivered = got[0].pfns
    # delivered PFNs are guest-physical (above VM RAM), and resolve back
    # to the original host frames
    assert int(delivered.min()) >= vmm.ram_frames
    back = vmm.memmap.peek_translate_array(delivered)
    assert (back == hpas).all()


def test_guest_to_host_translates_gpa_to_pfns():
    eng, _node, _pisces, linux, (vm,) = build_host_and_vm()
    guest = vm.kernel
    got = []
    linux.set_receiver(lambda msg, ch: got.append(msg))
    vm.set_receiver(lambda msg, ch: got.append(msg))
    channel = vm.channels[0]
    gpas = guest.alloc_pfns(16)

    def send():
        yield from channel.send(vm, KernelMessage("attach_resp", pfns=gpas))

    eng.run_process(send())
    delivered = got[0].pfns
    expected = guest.gpa_to_hpa(gpas)
    assert (delivered == expected).all()
    assert all(linux.kernel.owns_pfn(int(p)) for p in delivered)


def test_pfnless_messages_skip_translation():
    eng, _node, _pisces, linux, (vm,) = build_host_and_vm()
    vmm = vm.kernel.vmm
    entries_before = vmm.memmap.num_entries
    vm.set_receiver(lambda msg, ch: None)
    channel = vm.channels[0]

    def send():
        yield from channel.send(linux, KernelMessage("get_req", {"segid": 1}))

    eng.run_process(send())
    assert vmm.memmap.num_entries == entries_before
    assert vmm.pci.virqs_raised == 1


def test_two_vms_on_one_host_are_independent():
    eng, node, pisces, linux, vms = build_host_and_vm(num_vms=2)
    system = EnclaveSystem(node)
    system.add_all(pisces.all_enclaves)
    for vm in vms:
        system.add_enclave(vm)
    system.designate_name_server(linux)
    install_xemem(system)

    g0 = vms[0].kernel.create_process("p0")
    g1 = vms[1].kernel.create_process("p1")

    def run():
        api0, api1 = XpmemApi(g0), XpmemApi(g1)
        r0 = yield from vms[0].kernel.mmap_anonymous(g0, 1 * MB)
        yield from vms[0].kernel.touch_pages(g0, r0.start, r0.npages)
        segid = yield from api0.xpmem_make(r0.start, 1 * MB, name="vm2vm")
        # guest-to-guest attachment: VM1 attaches VM0's export, crossing
        # BOTH PCI channels through the host
        found = yield from api1.xpmem_search("vm2vm")
        apid = yield from api1.xpmem_get(found)
        att = yield from api1.xpmem_attach(apid)
        api0.segment(segid).view().write(0, b"vm to vm")
        return att.read(0, 8)

    assert eng.run_process(run()) == b"vm to vm"
    # each VM has its own device and memory map
    assert vms[0].kernel.vmm is not vms[1].kernel.vmm
    assert vms[0].kernel.vmm.pci.hypercalls >= 1
    assert vms[1].kernel.vmm.memmap.num_entries > vms[1].kernel.vmm.boot_map_entries


def test_guest_alloc_exhaustion():
    eng, _node, _pisces, _linux, (vm,) = build_host_and_vm()
    guest = vm.kernel
    from repro.hw.memory import OutOfMemoryError

    with pytest.raises(OutOfMemoryError):
        guest.alloc_pfns(guest.allocator.nframes + 1)
