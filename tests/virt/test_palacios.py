"""Unit tests for the Palacios VMM, PCI device, and guest kernel."""

import numpy as np
import pytest

from repro.hw import NodeHardware, R420_SPEC
from repro.hw.costs import MB, PAGE_4K
from repro.hw.memory import FrameAllocator
from repro.kernels import LinuxKernel
from repro.sim import Engine
from repro.virt import GuestLinuxKernel, PalaciosVmm


def make_host(ram_frames=262144):
    eng = Engine()
    node = NodeHardware(eng, R420_SPEC)
    rng = node.memory.zone(0).allocator.alloc(ram_frames)
    host = LinuxKernel(
        eng, node, node.cores[:4], FrameAllocator(rng.start_pfn, rng.nframes), name="host"
    )
    return eng, node, host


def make_vm(host, node, ram_mb=256, backend="rbtree"):
    return PalaciosVmm(
        host,
        vcpu_cores=node.cores[4:6],
        ram_bytes=ram_mb * MB,
        name="vm0",
        memmap_backend=backend,
    )


def test_vm_ram_is_few_large_entries():
    eng, node, host = make_host()
    vm = make_vm(host, node, ram_mb=256)
    # 256 MB in 128 MB blocks -> 2 entries
    assert vm.boot_map_entries == 2
    assert vm.memmap.num_entries == 2
    assert vm.ram_frames == 256 * MB // PAGE_4K
    del eng


def test_vm_ram_validation():
    eng, node, host = make_host()
    with pytest.raises(ValueError):
        PalaciosVmm(host, vcpu_cores=node.cores[4:5], ram_bytes=100)
    with pytest.raises(ValueError):
        PalaciosVmm(host, vcpu_cores=[], ram_bytes=1 * MB)
    del eng


def test_guest_ram_resolves_to_host_frames():
    eng, node, host = make_host()
    vm = make_vm(host, node)
    guest = GuestLinuxKernel(eng, node, vm.vcpu_cores, vm, name="guest")
    gpa = guest.alloc_pfns(16)
    hpa = guest.gpa_to_hpa(gpa)
    # the frames belong to the host partition
    assert all(host.owns_pfn(int(h)) for h in hpa)
    # and data written via guest frame view lands in host memory
    guest.mem.frame_view(int(gpa[0]))[:4] = [1, 2, 3, 4]
    assert list(node.memory.frame_view(int(hpa[0]))[:4]) == [1, 2, 3, 4]


def test_map_host_pfns_into_guest_allocates_fresh_gpa():
    eng, node, host = make_host()
    vm = make_vm(host, node)
    hpas = host.alloc_pfns(64, scattered=True)

    def run():
        gpas = yield from vm.map_host_pfns_into_guest(hpas)
        return gpas

    gpas = eng.run_process(run())
    assert len(gpas) == 64
    assert int(gpas[0]) >= vm.ram_frames  # never aliases RAM
    got = vm.memmap.peek_translate_array(gpas)
    assert (got == hpas).all()
    assert len(vm.insert_work_log) == 1 and vm.insert_work_log[0] > 0


def test_scattered_attach_inflates_map_and_work():
    eng, node, host = make_host()
    vm = make_vm(host, node)
    base_entries = vm.memmap.num_entries
    hpas = host.alloc_pfns(512, scattered=True)

    def run():
        yield from vm.map_host_pfns_into_guest(hpas)

    eng.run_process(run())
    assert vm.memmap.num_entries == base_entries + 512


def test_unmap_guest_attachment_shrinks_map():
    eng, node, host = make_host()
    vm = make_vm(host, node)
    hpas = host.alloc_pfns(32, scattered=True)

    def run():
        gpas = yield from vm.map_host_pfns_into_guest(hpas)
        yield from vm.unmap_guest_attachment(gpas)
        return gpas

    eng.run_process(run())
    assert vm.memmap.num_entries == vm.boot_map_entries


def test_translate_guest_pfns_is_cheap_for_ram():
    """Fig. 4(b): guest-export translation via big entries + cache."""
    eng, node, host = make_host()
    vm = make_vm(host, node)
    guest = GuestLinuxKernel(eng, node, vm.vcpu_cores, vm, name="guest")
    gpa = guest.alloc_pfns(4096)

    def run():
        t0 = eng.now
        hpa = yield from vm.translate_guest_pfns(gpa)
        return hpa, eng.now - t0

    hpa, elapsed = eng.run_process(run())
    assert (hpa == guest.gpa_to_hpa(gpa)).all()
    # nearly every page hits the last-entry cache
    per_page = elapsed / 4096
    assert per_page < 3 * vm.costs.memmap_cache_hit_ns


def test_rb_insert_cost_dominates_guest_attach():
    """Table 2's 80%-in-map-updates observation, reproduced in-model."""
    eng, node, host = make_host()
    vm = make_vm(host, node)
    hpas = host.alloc_pfns(8192, scattered=True)

    def run():
        t0 = eng.now
        yield from vm.map_host_pfns_into_guest(hpas)
        return eng.now - t0

    elapsed = eng.run_process(run())
    insert_ns = vm.insert_work_log[0]
    assert insert_ns / elapsed > 0.9  # map update dominates the VMM step


def test_pci_device_roundtrips():
    eng, node, host = make_host()
    vm = make_vm(host, node)
    got = {}

    def guest_handler(msg, pfns):
        got["guest"] = (msg, None if pfns is None else list(pfns))
        yield eng.sleep(10)
        return "guest-ack"

    def host_handler(msg, pfns):
        got["host"] = (msg, None if pfns is None else list(pfns))
        yield eng.sleep(10)
        return "host-ack"

    vm.pci.register_guest_handler(guest_handler)
    vm.pci.register_host_handler(host_handler)

    def run():
        a = yield from vm.pci.host_to_guest("cmd1", np.array([1, 2, 3]))
        b = yield from vm.pci.guest_to_host("cmd2")
        return a, b

    a, b = eng.run_process(run())
    assert (a, b) == ("guest-ack", "host-ack")
    assert got["guest"] == ("cmd1", [1, 2, 3])
    assert got["host"] == ("cmd2", None)
    assert vm.pci.virqs_raised == 1
    assert vm.pci.hypercalls == 1


def test_pci_unregistered_handler_fails():
    eng, node, host = make_host()
    vm = make_vm(host, node)

    def run():
        yield from vm.pci.host_to_guest("cmd")

    with pytest.raises(RuntimeError, match="no guest handler"):
        eng.run_process(run())


def test_pci_handler_occupancy_lands_in_steal_log():
    eng, node, host = make_host()
    vm = make_vm(host, node)

    def guest_handler(_msg, _pfns):
        yield eng.sleep(500)

    vm.pci.register_guest_handler(guest_handler)

    def run():
        yield from vm.pci.host_to_guest("cmd")

    eng.run_process(run())
    tags = [t for _s, _d, t in vm.vcpu_cores[0].steal_log]
    assert any("virq" in t for t in tags)


def test_radix_backend_vm():
    eng, node, host = make_host()
    vm = make_vm(host, node, backend="radix")
    hpas = host.alloc_pfns(256, scattered=True)

    def run():
        gpas = yield from vm.map_host_pfns_into_guest(hpas)
        return gpas

    gpas = eng.run_process(run())
    assert (vm.memmap.peek_translate_array(gpas) == hpas).all()
