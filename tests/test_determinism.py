"""Whole-stack determinism, including across Python hash randomization.

Everything in the simulation must be reproducible from its seed. The
subtle failure mode is accidental dependence on ``dict``/``set``
iteration order of *strings*, which varies run-to-run unless
PYTHONHASHSEED is fixed. These tests run a representative experiment in
subprocesses with different hash seeds and require identical output.
"""

import os
import subprocess
import sys

SNIPPET = r"""
from repro.bench.configs import build_cokernel_system, build_insitu_rig
from repro.hw.costs import MB, gib_per_s, PAGE_4K
from repro.workloads.hpccg import HpccgProblem
from repro.workloads.insitu import InSituConfig
from repro.xemem import XpmemApi

# a cross-enclave attach (exercises discovery, routing, channels)
rig = build_cokernel_system(num_cokernels=2)
eng = rig.engine
kitten = rig.cokernels[1].kernel
kitten.heap_pages = 8 * MB // PAGE_4K + 4
kp = kitten.create_process("exp")
lp = rig.linux.kernel.create_process("att", core_id=2)
heap = kitten.heap_region(kp)

def run():
    api_k, api_l = XpmemApi(kp), XpmemApi(lp)
    segid = yield from api_k.xpmem_make(heap.start, 8 * MB)
    apid = yield from api_l.xpmem_get(segid)
    t0 = eng.now
    att = yield from api_l.xpmem_attach(apid)
    return eng.now - t0, eng.now

print("attach", eng.run_process(run()))

# a noisy in situ run (exercises seeded noise + interference)
cfg = InSituConfig(execution="async", attach="recurring", iterations=40,
                   comm_interval=20, data_bytes=8 * MB,
                   problem=HpccgProblem(16, 16, 16))
w = build_insitu_rig("linux_linux", cfg, seed=5)["workload"]
res = w.run()
print("insitu", f"{res.sim_time_s:.9f}", res.analytics_faults)
"""


def run_with_hashseed(seed: str) -> str:
    env = dict(os.environ, PYTHONHASHSEED=seed)
    out = subprocess.run(
        [sys.executable, "-c", SNIPPET],
        capture_output=True, text=True, env=env,
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        timeout=240,
    )
    assert out.returncode == 0, out.stderr
    return out.stdout


def test_identical_across_hash_seeds():
    a = run_with_hashseed("1")
    b = run_with_hashseed("31337")
    assert a == b
    assert "attach" in a and "insitu" in a
