"""Fast-path flag plumbing and engine run-boundary semantics."""

import os
import subprocess
import sys

import pytest

from repro.sim import Engine, fastpath
from repro.sim.fastpath import FASTPATH


def test_flags_default_on():
    assert FASTPATH.engine_slots
    assert FASTPATH.ipi_batching
    assert FASTPATH.walk_cache
    assert FASTPATH.range_vectorize
    assert FASTPATH.fault_vectorize


def test_disabled_context_restores():
    with fastpath.disabled():
        assert not FASTPATH.engine_slots
        assert not FASTPATH.walk_cache
    assert FASTPATH.engine_slots
    assert FASTPATH.walk_cache


def test_configured_single_flag():
    with fastpath.configured(walk_cache=False):
        assert not FASTPATH.walk_cache
        assert FASTPATH.engine_slots  # others untouched
    assert FASTPATH.walk_cache


def test_configured_rejects_unknown_flag():
    with pytest.raises(ValueError, match="unknown fast-path flag"):
        with fastpath.configured(warp_drive=True):
            pass


def test_configured_restores_on_exception():
    with pytest.raises(RuntimeError):
        with fastpath.configured(ipi_batching=False):
            raise RuntimeError("boom")
    assert FASTPATH.ipi_batching


def test_env_override_disables_all():
    code = (
        "from repro.sim.fastpath import FASTPATH; "
        "print(int(FASTPATH.any_enabled))"
    )
    env = dict(os.environ, REPRO_FASTPATH="0", PYTHONPATH="src")
    out = subprocess.run(
        [sys.executable, "-c", code], capture_output=True, text=True,
        env=env, cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
    )
    assert out.returncode == 0, out.stderr
    assert out.stdout.strip() == "0"


@pytest.mark.parametrize("fast", [True, False])
def test_run_until_executes_events_exactly_at_boundary(fast):
    """Events scheduled exactly at until_ns run; the clock lands on until_ns."""
    ctx = fastpath.enabled() if fast else fastpath.disabled()
    with ctx:
        eng = Engine()
        fired = []
        eng.call_at(50, fired.append, "early")
        eng.call_at(100, fired.append, "boundary")
        eng.call_at(101, fired.append, "late")
        eng.run(until_ns=100)
        assert fired == ["early", "boundary"]
        assert eng.now == 100
        assert eng.queue_len == 1
        eng.run()
        assert fired == ["early", "boundary", "late"]
        assert eng.now == 101


@pytest.mark.parametrize("fast", [True, False])
def test_run_until_past_queue_advances_clock(fast):
    ctx = fastpath.enabled() if fast else fastpath.disabled()
    with ctx:
        eng = Engine()
        eng.call_at(10, lambda: None)
        eng.run(until_ns=500)
        assert eng.now == 500


@pytest.mark.parametrize("fast", [True, False])
def test_processes_identical_under_both_paths(fast):
    """A process mix (timeouts, events, interrupts) ends at the same instant."""
    ctx = fastpath.enabled() if fast else fastpath.disabled()
    with ctx:
        eng = Engine()
        ev = eng.event("go")

        def pinger():
            yield eng.sleep(7)
            ev.trigger("ping")
            yield eng.sleep(5)
            return eng.now

        def waiter():
            got = yield ev
            yield eng.sleep(3)
            return (got, eng.now)

        p1 = eng.spawn(pinger())
        p2 = eng.spawn(waiter())
        eng.run()
        assert p1.result == 12
        assert p2.result == ("ping", 10)
