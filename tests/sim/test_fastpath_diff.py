"""Differential tests: fast paths must be invisible except in wall-clock.

Each scenario runs twice — all fast paths off (the slow reference
implementation) and all on — under full observability. The two runs must
agree on the virtual end time, on every metrics counter outside the
``fastpath.*`` namespace, and on the byte-exact JSONL trace export.
"""

import io

from repro import obs
from repro.hw.costs import PAGE_4K
from repro.sim import fastpath
from repro.xemem import XpmemApi

from tests.xemem.conftest import build_system


def _observed(scenario):
    """Run ``scenario`` under tracing+metrics; return (end_ns, counters, trace)."""
    with obs.observing(trace=True, metrics=True) as ctx:
        end_ns = scenario()
    counters = {
        k: v for k, v in ctx.metrics.snapshot().items()
        if not k.startswith("fastpath.")
    }
    buf = io.StringIO()
    ctx.tracer.to_jsonl(buf)
    return end_ns, counters, buf.getvalue()


def _assert_identical(scenario):
    with fastpath.disabled():
        slow = _observed(scenario)
    with fastpath.enabled():
        fast = _observed(scenario)
    assert fast[0] == slow[0], "virtual end time diverged"
    assert fast[1] == slow[1], "metrics counters diverged"
    assert fast[2] == slow[2], "trace export bytes diverged"


def _cross_enclave_scenario():
    """Single co-kernel: burst-eligible IPI chunking, walk cache on the
    recurring attach, vectorized EAGER map install."""
    rig = build_system(num_cokernels=1)
    eng = rig["engine"]
    kitten = rig["cokernels"][0]
    npages = 20_000  # ~80 MB -> several IPI chunk rounds per attach
    kitten.kernel.heap_pages = npages  # heap is sized at process creation
    kp = kitten.kernel.create_process("exp")
    lp = rig["linux"].kernel.create_process("att", core_id=2)
    heap = kitten.kernel.heap_region(kp)

    def run():
        api_k, api_l = XpmemApi(kp), XpmemApi(lp)
        segid = yield from api_k.xpmem_make(heap.start, npages * PAGE_4K)
        apid = yield from api_l.xpmem_get(segid)
        for _ in range(2):  # second round re-walks the unchanged range
            att = yield from api_l.xpmem_attach(apid)
            yield from rig["linux"].kernel.touch_pages(lp, att.vaddr, npages)
            yield from api_l.xpmem_detach(att)
        yield from api_l.xpmem_release(apid)

    eng.run_process(run())
    return eng.now


def _linux_local_scenario():
    """Single-OS Linux path: partially-populated lazy faulting in
    pin_pages (export side) and touch_pages (attach side)."""
    rig = build_system(num_cokernels=1)
    eng = rig["engine"]
    linux = rig["linux"].kernel
    exp = linux.create_process("exp", core_id=1)
    att = linux.create_process("att", core_id=2)
    npages = 300

    def run():
        region = yield from linux.mmap_anonymous(exp, npages * PAGE_4K, "src")
        # touch only half: the export's get_user_pages must fault the rest
        yield from linux.touch_pages(exp, region.start, npages // 2)
        api_e, api_a = XpmemApi(exp), XpmemApi(att)
        segid = yield from api_e.xpmem_make(region.start, npages * PAGE_4K)
        apid = yield from api_a.xpmem_get(segid)
        attached = yield from api_a.xpmem_attach(apid)
        # partial touch, then full touch over the half-populated window
        yield from linux.touch_pages(att, attached.vaddr, npages // 3)
        yield from linux.touch_pages(att, attached.vaddr, npages, write=True)
        yield from api_a.xpmem_detach(attached)
        yield from api_a.xpmem_release(apid)

    eng.run_process(run())
    return eng.now


def _contended_scenario():
    """Two co-kernels: core 0 has two bound vectors, so IPI bursts must
    fall back to per-round queueing (the §5.3 contention model)."""
    rig = build_system(num_cokernels=2)
    eng = rig["engine"]
    linux = rig["linux"].kernel
    npages = 12_000
    procs = []
    for i, kitten in enumerate(rig["cokernels"]):
        kitten.kernel.heap_pages = npages
        kp = kitten.kernel.create_process("exp")
        lp = linux.create_process(f"att{i}", core_id=2 + i)
        heap = kitten.kernel.heap_region(kp)
        procs.append((kp, lp, heap))

    def attacher(kp, lp, heap):
        api_k, api_l = XpmemApi(kp), XpmemApi(lp)
        segid = yield from api_k.xpmem_make(heap.start, npages * PAGE_4K)
        apid = yield from api_l.xpmem_get(segid)
        att = yield from api_l.xpmem_attach(apid)
        yield from api_l.xpmem_detach(att)
        yield from api_l.xpmem_release(apid)

    for kp, lp, heap in procs:
        eng.spawn(attacher(kp, lp, heap))
    eng.run()
    return eng.now


def test_cross_enclave_identical():
    _assert_identical(_cross_enclave_scenario)


def test_linux_local_identical():
    _assert_identical(_linux_local_scenario)


def test_contended_identical():
    _assert_identical(_contended_scenario)


def test_fast_run_uses_walk_cache_and_burst():
    """The fast run must actually take the fast paths it claims to."""
    with fastpath.enabled():
        with obs.observing(trace=False, metrics=True) as ctx:
            _cross_enclave_scenario()
    snap = ctx.metrics.snapshot()
    assert snap.get("fastpath.walkcache.hits", 0) > 0
    assert snap.get("fastpath.ipi.batched_rounds", 0) > 1


def test_slow_run_has_no_fastpath_counters():
    with fastpath.disabled():
        with obs.observing(trace=False, metrics=True) as ctx:
            _cross_enclave_scenario()
    assert not [k for k in ctx.metrics.snapshot() if k.startswith("fastpath.")]
