"""Unit tests for Resource/Mutex contention semantics and statistics."""

import pytest

from repro.sim import Engine, Mutex, Resource, SimError


def test_uncontended_acquire_is_instant():
    eng = Engine()
    res = Resource(eng, capacity=2)

    def proc():
        yield res.acquire()
        t = eng.now
        res.release()
        return t

    assert eng.run_process(proc()) == 0
    assert res.stats.acquisitions == 1
    assert res.stats.contended_acquisitions == 0


def test_capacity_enforced_fifo():
    eng = Engine()
    res = Resource(eng, capacity=1, name="core")
    order = []

    def worker(tag, hold_ns):
        yield res.acquire()
        order.append((tag, eng.now))
        yield eng.sleep(hold_ns)
        res.release()

    eng.spawn(worker("a", 100))
    eng.spawn(worker("b", 100))
    eng.spawn(worker("c", 100))
    eng.run()
    assert order == [("a", 0), ("b", 100), ("c", 200)]


def test_capacity_two_allows_two_holders():
    eng = Engine()
    res = Resource(eng, capacity=2)
    order = []

    def worker(tag):
        yield res.acquire()
        order.append((tag, eng.now))
        yield eng.sleep(50)
        res.release()

    for tag in "abc":
        eng.spawn(worker(tag))
    eng.run()
    assert order == [("a", 0), ("b", 0), ("c", 50)]


def test_release_idle_raises():
    eng = Engine()
    res = Resource(eng)
    with pytest.raises(SimError):
        res.release()


def test_bad_capacity_rejected():
    eng = Engine()
    with pytest.raises(SimError):
        Resource(eng, capacity=0)


def test_try_acquire():
    eng = Engine()
    res = Resource(eng, capacity=1)
    assert res.try_acquire()
    assert not res.try_acquire()
    res.release()
    assert res.try_acquire()


def test_wait_statistics():
    eng = Engine()
    res = Resource(eng, capacity=1)

    def worker(hold_ns):
        yield res.acquire()
        yield eng.sleep(hold_ns)
        res.release()

    eng.spawn(worker(100))
    eng.spawn(worker(100))
    eng.spawn(worker(100))
    eng.run()
    assert res.stats.acquisitions == 3
    assert res.stats.contended_acquisitions == 2
    assert res.stats.total_wait_ns == 100 + 200
    assert res.stats.max_wait_ns == 200
    assert res.stats.max_queue_depth == 2
    assert res.stats.mean_wait_ns == pytest.approx(100.0)


def test_busy_time_tracking():
    eng = Engine()
    res = Resource(eng, capacity=1)

    def worker():
        yield res.acquire()
        yield eng.sleep(100)
        res.release()

    def later():
        yield eng.sleep(500)
        yield res.acquire()
        yield eng.sleep(100)
        res.release()

    eng.spawn(worker())
    eng.spawn(later())
    eng.run()
    assert res.stats.busy_ns == 200  # two disjoint 100ns busy intervals


def test_mutex_locked_section():
    eng = Engine()
    mtx = Mutex(eng, name="mmap_sem")
    order = []

    def body(tag):
        order.append((tag, "in", eng.now))
        yield eng.sleep(10)
        order.append((tag, "out", eng.now))
        return tag

    def worker(tag):
        result = yield from mtx.locked_section(body(tag))
        return result

    pa = eng.spawn(worker("a"))
    pb = eng.spawn(worker("b"))
    eng.run()
    assert pa.result == "a" and pb.result == "b"
    assert order == [
        ("a", "in", 0),
        ("a", "out", 10),
        ("b", "in", 10),
        ("b", "out", 20),
    ]
    assert mtx.in_use == 0


def test_mutex_released_on_exception():
    eng = Engine()
    mtx = Mutex(eng)

    def bad_body():
        yield eng.sleep(1)
        raise RuntimeError("inside lock")

    def worker():
        with pytest.raises(RuntimeError):
            yield from mtx.locked_section(bad_body())
        return mtx.in_use

    assert eng.run_process(worker()) == 0


def test_queue_depth_property():
    eng = Engine()
    res = Resource(eng, capacity=1)

    def holder():
        yield res.acquire()
        yield eng.sleep(100)
        res.release()

    def prober():
        yield eng.sleep(10)
        return res.queue_depth

    eng.spawn(holder())
    eng.spawn(holder())
    eng.spawn(holder())
    p = eng.spawn(prober())
    eng.run()
    assert p.result == 2
