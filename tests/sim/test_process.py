"""Unit tests for Process semantics: joins, results, errors, interrupts."""

import pytest

from repro.sim import Engine, Interrupt, SimError


def test_process_return_value():
    eng = Engine()

    def proc():
        yield eng.sleep(1)
        return 99

    assert eng.run_process(proc()) == 99


def test_process_join_gets_result():
    eng = Engine()

    def child():
        yield eng.sleep(10)
        return "done"

    def parent():
        c = eng.spawn(child())
        got = yield c
        return (eng.now, got)

    assert eng.run_process(parent()) == (10, "done")


def test_join_already_finished_process():
    eng = Engine()

    def child():
        yield eng.sleep(1)
        return "early"

    def parent(c):
        yield eng.sleep(100)
        got = yield c
        return got

    c = eng.spawn(child())
    assert eng.run_process(parent(c)) == "early"


def test_child_exception_propagates_to_joiner():
    eng = Engine()

    def child():
        yield eng.sleep(1)
        raise RuntimeError("child died")

    def parent():
        c = eng.spawn(child())
        with pytest.raises(RuntimeError, match="child died"):
            yield c
        return "survived"

    assert eng.run_process(parent()) == "survived"


def test_unjoined_failure_surfaces_from_run():
    eng = Engine()

    def proc():
        yield eng.sleep(1)
        raise ValueError("unobserved")

    eng.spawn(proc())
    with pytest.raises(ValueError, match="unobserved"):
        eng.run()


def test_result_before_finish_raises():
    eng = Engine()

    def proc():
        yield eng.sleep(1)

    p = eng.spawn(proc())
    with pytest.raises(SimError):
        _ = p.result


def test_interrupt_wakes_sleeping_process():
    eng = Engine()

    def sleeper():
        try:
            yield eng.sleep(1_000_000)
            return "slept"
        except Interrupt as intr:
            return ("interrupted", intr.cause, eng.now)

    def interrupter(target):
        yield eng.sleep(5)
        target.interrupt(cause="wakeup")

    p = eng.spawn(sleeper())
    eng.spawn(interrupter(p))
    eng.run()
    assert p.result == ("interrupted", "wakeup", 5)


def test_stale_wakeup_after_interrupt_is_ignored():
    """The abandoned sleep must not resume the process a second time."""
    eng = Engine()
    resumes = []

    def sleeper():
        try:
            yield eng.sleep(100)
        except Interrupt:
            pass
        resumes.append(eng.now)
        yield eng.sleep(500)
        resumes.append(eng.now)

    def interrupter(target):
        yield eng.sleep(10)
        target.interrupt()

    p = eng.spawn(sleeper())
    eng.spawn(interrupter(p))
    eng.run()
    assert p.finished
    # exactly one resume from the interrupt (t=10) and one from the
    # follow-up sleep (t=510); the abandoned t=100 wakeup did nothing.
    assert resumes == [10, 510]


def test_interrupt_finished_process_is_noop():
    eng = Engine()

    def proc():
        yield eng.sleep(1)
        return "ok"

    p = eng.spawn(proc())
    eng.run()
    p.interrupt()
    eng.run()
    assert p.result == "ok"


def test_nested_yield_from():
    eng = Engine()

    def inner():
        yield eng.sleep(10)
        return 5

    def outer():
        a = yield from inner()
        b = yield from inner()
        return a + b

    def main():
        got = yield from outer()
        return (got, eng.now)

    assert eng.run_process(main()) == (10, 20)


def test_many_processes_deterministic():
    def run_once():
        eng = Engine()
        log = []

        def worker(i):
            yield eng.sleep(i % 7)
            log.append(i)
            yield eng.sleep((i * 13) % 5)
            log.append(-i)

        for i in range(50):
            eng.spawn(worker(i))
        eng.run()
        return log

    assert run_once() == run_once()


def test_process_timestamps():
    eng = Engine()

    def starter():
        yield eng.sleep(40)
        p = eng.spawn(child())
        yield p
        return p

    def child():
        yield eng.sleep(60)

    p = eng.run_process(starter())
    assert p.started_at == 40
    assert p.finished_at == 100
