"""Unit tests for the discrete-event engine core."""

import pytest

from repro.sim import Engine, SimError
from repro.sim.engine import NS_PER_SEC


def test_clock_starts_at_zero():
    eng = Engine()
    assert eng.now == 0


def test_sleep_advances_virtual_time():
    eng = Engine()

    def proc():
        yield eng.sleep(123)
        return eng.now

    assert eng.run_process(proc()) == 123


def test_sleep_zero_is_allowed():
    eng = Engine()

    def proc():
        yield eng.sleep(0)
        return eng.now

    assert eng.run_process(proc()) == 0


def test_negative_sleep_rejected():
    eng = Engine()
    with pytest.raises(SimError):
        eng.sleep(-1)


def test_events_fire_in_time_order():
    eng = Engine()
    order = []

    def proc(delay, tag):
        yield eng.sleep(delay)
        order.append(tag)

    eng.spawn(proc(30, "c"))
    eng.spawn(proc(10, "a"))
    eng.spawn(proc(20, "b"))
    eng.run()
    assert order == ["a", "b", "c"]


def test_same_instant_events_fire_in_schedule_order():
    eng = Engine()
    order = []

    def proc(tag):
        yield eng.sleep(5)
        order.append(tag)

    for tag in "abcde":
        eng.spawn(proc(tag))
    eng.run()
    assert order == list("abcde")


def test_cannot_schedule_in_the_past():
    eng = Engine()

    def proc():
        yield eng.sleep(100)
        eng.call_at(50, lambda: None)

    with pytest.raises(SimError):
        eng.run_process(proc())


def test_run_until_stops_clock_exactly():
    eng = Engine()

    def proc():
        yield eng.sleep(1000)

    eng.spawn(proc())
    eng.run(until_ns=400)
    assert eng.now == 400
    assert eng.queue_len == 1  # the pending wakeup survives
    eng.run()
    assert eng.now == 1000


def test_run_until_beyond_queue_advances_clock():
    eng = Engine()
    eng.run(until_ns=999)
    assert eng.now == 999


def test_event_trigger_resumes_waiter_with_value():
    eng = Engine()
    ev = eng.event("e")

    def waiter():
        got = yield ev
        return got

    def firer():
        yield eng.sleep(7)
        ev.trigger("payload")

    p = eng.spawn(waiter())
    eng.spawn(firer())
    eng.run()
    assert p.result == "payload"
    assert p.finished_at == 7


def test_event_yield_after_trigger_resumes_immediately():
    eng = Engine()
    ev = eng.event()

    def proc():
        yield eng.sleep(3)
        got = yield ev  # already triggered at t=0
        return (eng.now, got)

    ev.trigger(42)
    assert eng.run_process(proc()) == (3, 42)


def test_event_double_trigger_raises():
    eng = Engine()
    ev = eng.event()
    ev.trigger()
    with pytest.raises(SimError):
        ev.trigger()


def test_event_fail_raises_in_waiter():
    eng = Engine()
    ev = eng.event()

    def waiter():
        with pytest.raises(ValueError, match="boom"):
            yield ev
        return "handled"

    p = eng.spawn(waiter())
    ev.fail(ValueError("boom"))
    eng.run()
    assert p.result == "handled"


def test_all_of_collects_values_in_order():
    eng = Engine()

    def worker(delay, value):
        yield eng.sleep(delay)
        return value

    def main():
        procs = [eng.spawn(worker(30, "x")), eng.spawn(worker(10, "y"))]
        results = yield eng.all_of(procs)
        return results

    assert eng.run_process(main()) == ["x", "y"]


def test_all_of_empty_fires_immediately():
    eng = Engine()

    def main():
        results = yield eng.all_of([])
        return (eng.now, results)

    assert eng.run_process(main()) == (0, [])


def test_any_of_returns_first_index_and_value():
    eng = Engine()

    def worker(delay, value):
        yield eng.sleep(delay)
        return value

    def main():
        a = eng.spawn(worker(50, "slow"))
        b = eng.spawn(worker(5, "fast"))
        idx, val = yield eng.any_of([a, b])
        return idx, val, eng.now

    # run() continues until the slow worker finishes too
    assert eng.run_process(main()) == (1, "fast", 5)


def test_any_of_nothing_rejected():
    eng = Engine()
    with pytest.raises(SimError):
        eng.any_of([])


def test_ns_per_sec_constant():
    assert NS_PER_SEC == 10**9


def test_run_process_detects_deadlock():
    eng = Engine()

    def proc():
        yield eng.event()  # never triggered

    with pytest.raises(SimError, match="did not finish"):
        eng.run_process(proc())


def test_yielding_non_awaitable_fails_process():
    eng = Engine()

    def proc():
        yield 42

    with pytest.raises(SimError, match="must yield Awaitable"):
        eng.run_process(proc())
