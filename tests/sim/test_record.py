"""Unit tests for SeriesStats, TraceRecorder, percentile."""

import math

import pytest

from repro.sim import SeriesStats, TraceRecorder
from repro.sim.record import percentile


def test_series_stats_basic():
    s = SeriesStats()
    s.extend([1.0, 2.0, 3.0, 4.0])
    assert s.count == 4
    assert s.mean == pytest.approx(2.5)
    assert s.variance == pytest.approx(5.0 / 3.0)
    assert s.min == 1.0
    assert s.max == 4.0


def test_series_stats_single_sample():
    s = SeriesStats()
    s.add(7.0)
    assert s.mean == 7.0
    assert s.variance == 0.0
    assert s.stdev == 0.0


def test_series_stats_empty_summary():
    s = SeriesStats()
    summ = s.summary()
    assert summ["count"] == 0
    assert math.isnan(summ["min"])


def test_series_stats_matches_numpy():
    import numpy as np

    rng = np.random.default_rng(42)
    xs = rng.normal(10.0, 3.0, size=1000)
    s = SeriesStats()
    s.extend(xs)
    assert s.mean == pytest.approx(float(np.mean(xs)))
    assert s.stdev == pytest.approx(float(np.std(xs, ddof=1)))


def test_trace_recorder_filters_by_kind():
    tr = TraceRecorder()
    tr.record(10, "detour", duration=5.0)
    tr.record(20, "attach", size=4096)
    tr.record(30, "detour", duration=6.0)
    assert len(tr) == 3
    assert [ev.time_ns for ev in tr.of_kind("detour")] == [10, 30]
    assert tr.series("detour", "duration") == [(10, 5.0), (30, 6.0)]


def test_trace_recorder_disabled_is_noop():
    tr = TraceRecorder(enabled=False)
    tr.record(1, "x")
    assert len(tr) == 0


def test_trace_recorder_clear():
    tr = TraceRecorder()
    tr.record(1, "x")
    tr.clear()
    assert len(tr) == 0


def test_trace_recorder_ring_cap_keeps_newest():
    tr = TraceRecorder(max_events=3)
    for t in range(10):
        tr.record(t, "e", i=t)
    assert len(tr) == 3
    assert [ev.time_ns for ev in tr.events] == [7, 8, 9]
    assert tr.dropped == 7
    assert tr.max_events == 3


def test_trace_recorder_unbounded_reports_no_drops():
    tr = TraceRecorder()
    for t in range(100):
        tr.record(t, "e")
    assert tr.max_events is None
    assert tr.dropped == 0


def test_trace_recorder_clear_resets_drop_counter():
    tr = TraceRecorder(max_events=1)
    tr.record(1, "a")
    tr.record(2, "b")
    assert tr.dropped == 1
    tr.clear()
    assert tr.dropped == 0


def test_trace_recorder_mirrors_into_obs_tracer():
    from repro import obs

    with obs.observing(trace=True, metrics=False) as ctx:
        tr = TraceRecorder(track="system")
        tr.record(42, "msg", command="ping")
    (span,) = ctx.tracer.spans
    assert span.name == "msg"
    assert span.track == "system"
    assert span.start_ns == span.end_ns == 42
    assert span.attrs == {"command": "ping"}


def test_percentile_nearest_rank():
    xs = [1.0, 2.0, 3.0, 4.0, 5.0]
    assert percentile(xs, 0) == 1.0
    assert percentile(xs, 50) == 3.0
    assert percentile(xs, 100) == 5.0
    assert percentile(xs, 99) == 5.0


def test_percentile_validation():
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1.0], 101)
