"""Differential tests: storage fidelity must be invisible except in wall-clock.

The columnar (fast) and radix (detailed) page-table stores are twins
under the REP005 contract (docs/COSTMODEL.md § Fidelity split): the
scenarios from the fastpath differential suite run on each store, under
*both* ``REPRO_FASTPATH`` settings, and must agree on the virtual end
time, on every metrics counter, and on the byte-exact JSONL trace
export. A store-level op-mix additionally pins down the per-operation
observables — translations, masks, collision messages, and exact-hole
fault addresses.
"""

import numpy as np
import pytest

from repro.kernels.pagetable import (
    PAGE_SIZE,
    PML4_SLOT_SPAN,
    PTE_DIRTY,
    PTE_PINNED,
    PTE_PRESENT,
    PTE_USER,
    PTE_WRITABLE,
    PageFault,
    PageTable,
    _ColumnarStore,
    _RadixStore,
)
from repro.sim import fastpath, fidelity

from tests.sim.test_fastpath_diff import (
    _contended_scenario,
    _cross_enclave_scenario,
    _linux_local_scenario,
    _observed,
)

RW = PTE_PRESENT | PTE_WRITABLE | PTE_USER


def _assert_fidelity_identical(scenario):
    """detailed vs fast stores, under both fastpath settings."""
    for fp_ctx in (fastpath.disabled, fastpath.enabled):
        with fp_ctx():
            with fidelity.detailed():
                ref = _observed(scenario)
            with fidelity.fast():
                fast = _observed(scenario)
        assert fast[0] == ref[0], "virtual end time diverged"
        assert fast[1] == ref[1], "metrics counters diverged"
        assert fast[2] == ref[2], "trace export bytes diverged"


def test_cross_enclave_identical():
    _assert_fidelity_identical(_cross_enclave_scenario)


def test_linux_local_identical():
    _assert_fidelity_identical(_linux_local_scenario)


def test_contended_identical():
    _assert_fidelity_identical(_contended_scenario)


# -- store-level observables --------------------------------------------------


def _exercise_table():
    """One PageTable op-mix; returns every observable output."""
    out = []
    pt = PageTable()
    base = 2 * PML4_SLOT_SPAN
    npages = 1600  # crosses four leaf tables
    base2 = base + npages * PAGE_SIZE
    pfns = np.arange(5000, 5000 + npages, dtype=np.int64)
    pt.map_range(base, pfns, RW)
    out.append(pt.translate_range(base, npages).tolist())
    pt.set_flags_range(base, npages, set_mask=PTE_PINNED)
    out.append(pt.flag_mask(base, npages, PTE_PINNED).tolist())
    out.append(pt.range_flags_all(base, npages, PTE_PINNED))
    # sparse fill with holes, spanning multiple leaves
    idx = np.array([0, 3, 4, 5, 600, 1100], dtype=np.int64)
    pt.map_pages_sparse(base2, idx, 9000 + idx, RW)
    out.append(pt.present_mask(base2, 1200).tolist())
    # exact-hole fault addresses must agree across stores
    try:
        pt.translate_range(base2, 1200)
    except PageFault as exc:
        out.append(exc.vaddr)
    try:
        pt.unmap_range(base, npages + 2)  # base2+1 is a sparse hole
    except PageFault as exc:
        out.append(exc.vaddr)
    try:
        pt.set_flags_range(base2, 4, set_mask=PTE_DIRTY)
    except PageFault as exc:
        out.append(exc.vaddr)
    # collision messages (first colliding page) must agree too
    try:
        pt.map_range(
            base + (npages - 2) * PAGE_SIZE, np.arange(3, dtype=np.int64), RW
        )
    except ValueError as exc:
        out.append(str(exc))
    try:
        pt.map_pages_sparse(
            base2, np.array([0, 1]), np.array([1, 2], dtype=np.int64), RW
        )
    except ValueError as exc:
        out.append(str(exc))
    out.append(pt.unmap_range(base, npages).tolist())
    out.append(pt.present_pfns().tolist())
    out.append(pt.mapped_vaddrs())
    out.append(pt.present_pages)
    out.append(pt.generation)
    return out


@pytest.mark.parametrize("fp", ["off", "on"])
def test_store_observables_identical(fp):
    ctx = fastpath.disabled if fp == "off" else fastpath.enabled
    with ctx():
        with fidelity.detailed():
            ref = _exercise_table()
        with fidelity.fast():
            fast = _exercise_table()
    assert fast == ref


# -- switchboard behavior -----------------------------------------------------


def test_invalid_mode_rejected():
    with pytest.raises(ValueError, match="unknown fidelity mode"):
        fidelity.FIDELITY.set_mode("quick")


def test_mode_binds_at_construction():
    """Flipping FIDELITY affects tables built afterwards, not live ones."""
    with fidelity.detailed():
        detailed_pt = PageTable()
    with fidelity.fast():
        fast_pt = PageTable()
    assert isinstance(detailed_pt._store, _RadixStore)
    assert isinstance(fast_pt._store, _ColumnarStore)


def test_configured_restores_mode():
    before = fidelity.FIDELITY.mode
    with fidelity.configured("detailed" if before == "fast" else "fast"):
        assert fidelity.FIDELITY.mode != before
    assert fidelity.FIDELITY.mode == before
