"""Smoke tests for the ``python -m repro`` command line."""

import pytest

from repro.__main__ import main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("fig5", "fig6", "fig7", "fig8", "fig9", "table2",
                 "ablations", "explain"):
        assert name in out


def test_fig5_command(capsys):
    assert main(["fig5", "--reps", "2"]) == 0
    out = capsys.readouterr().out
    assert "Figure 5" in out
    assert "attach GiB/s" in out
    assert "regenerated" in out


def test_fig7_command(capsys):
    assert main(["fig7", "--seconds", "3"]) == 0
    out = capsys.readouterr().out
    assert "Figure 7" in out
    assert "SMI" in out


def test_explain_command(capsys):
    assert main(["explain"]) == 0
    out = capsys.readouterr().out
    assert "Kitten -> Linux (native)" in out
    assert "VMM memory-map inserts" in out
    assert "TOTAL" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["fig99"])


def test_trace_and_metrics_flags(tmp_path, capsys):
    import json

    trace = tmp_path / "t.json"
    metrics = tmp_path / "m.json"
    assert main(["explain", "--trace", str(trace),
                 "--metrics", "--metrics-out", str(metrics)]) == 0
    out = capsys.readouterr().out
    assert "== metrics" in out

    doc = json.loads(trace.read_text())
    spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert spans, "trace should contain completed spans"
    cats = {e["cat"] for e in spans}
    assert "xemem" in cats and "pisces" in cats

    snap = json.loads(metrics.read_text())
    assert len(snap) >= 10
    assert snap["xemem.attach.count"] >= 1


def test_jsonl_trace_format(tmp_path):
    import json

    trace = tmp_path / "t.jsonl"
    assert main(["explain", "--trace", str(trace),
                 "--trace-format", "jsonl"]) == 0
    lines = [json.loads(line)
             for line in trace.read_text().splitlines() if line]
    assert lines and all("name" in rec and "start_ns" in rec for rec in lines)


def test_inspect_command(tmp_path, capsys):
    trace = tmp_path / "t.json"
    assert main(["explain", "--trace", str(trace)]) == 0
    capsys.readouterr()
    assert main(["inspect", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "spans" in out
    assert "xemem.attach" in out
    assert "per track" in out


def test_inspect_shows_per_name_duration_stats(tmp_path, capsys):
    trace = tmp_path / "t.json"
    assert main(["explain", "--trace", str(trace)]) == 0
    capsys.readouterr()
    assert main(["inspect", str(trace)]) == 0
    out = capsys.readouterr().out
    for col in ("count", "total ms", "mean us", "max us"):
        assert col in out
    assert "WARNING" not in out  # nothing dropped


def test_inspect_attribute_flag_adds_breakdown(tmp_path, capsys):
    trace = tmp_path / "t.json"
    assert main(["explain", "--trace", str(trace)]) == 0
    capsys.readouterr()
    assert main(["inspect", str(trace), "--attribute"]) == 0
    out = capsys.readouterr().out
    assert "per-subsystem cost attribution" in out
    assert "critical path:" in out


def test_inspect_warns_loudly_about_dropped_spans(tmp_path, capsys):
    from repro import obs
    from repro.bench import figures

    trace = tmp_path / "t.json"
    with obs.observing(trace=True, metrics=False, max_trace_events=5) as ctx:
        figures.fig5_throughput(reps=1)
    assert ctx.tracer.dropped > 0
    with open(trace, "w") as fp:
        ctx.tracer.to_chrome(fp)
    for command in ("inspect", "report"):
        assert main([command, str(trace)]) == 0
        out = capsys.readouterr().out
        assert f"WARNING: {ctx.tracer.dropped} spans were DROPPED" in out
        assert "TRUNCATED" in out


def test_report_command_attributes_a_fig5_trace(tmp_path, capsys):
    """Acceptance: a Table-2-style breakdown whose buckets cover >= 95%
    of the recorded span time of a Fig. 5 run."""
    import re

    trace = tmp_path / "t.json"
    assert main(["fig5", "--reps", "1", "--trace", str(trace)]) == 0
    capsys.readouterr()
    assert main(["report", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "per-subsystem cost attribution" in out
    for bucket in ("channel", "ipi", "xemem"):
        assert bucket in out
    assert "TOTAL (attributed)" in out
    (coverage,) = re.findall(r"coverage ([0-9.]+)%", out.splitlines()[0])
    assert float(coverage) >= 95.0


def test_report_round_trips_jsonl_traces(tmp_path, capsys):
    trace = tmp_path / "t.jsonl"
    assert main(["explain", "--trace", str(trace),
                 "--trace-format", "jsonl"]) == 0
    capsys.readouterr()
    assert main(["report", str(trace)]) == 0
    assert "per-subsystem cost attribution" in capsys.readouterr().out


def test_report_rejects_garbage_input(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("this is not a trace")
    with pytest.raises(SystemExit, match="not a Chrome-trace or JSONL"):
        main(["report", str(bad)])
    with pytest.raises(SystemExit, match="cannot read"):
        main(["report", str(tmp_path / "absent.json")])


def test_inspect_requires_target():
    with pytest.raises(SystemExit):
        main(["inspect"])


def test_report_requires_target():
    with pytest.raises(SystemExit):
        main(["report"])


def test_profile_flag(capsys):
    assert main(["explain", "--profile"]) == 0
    out = capsys.readouterr().out
    assert "hot path" in out
