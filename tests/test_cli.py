"""Smoke tests for the ``python -m repro`` command line."""

import pytest

from repro.__main__ import main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("fig5", "fig6", "fig7", "fig8", "fig9", "table2",
                 "ablations", "explain"):
        assert name in out


def test_fig5_command(capsys):
    assert main(["fig5", "--reps", "2"]) == 0
    out = capsys.readouterr().out
    assert "Figure 5" in out
    assert "attach GiB/s" in out
    assert "regenerated" in out


def test_fig7_command(capsys):
    assert main(["fig7", "--seconds", "3"]) == 0
    out = capsys.readouterr().out
    assert "Figure 7" in out
    assert "SMI" in out


def test_explain_command(capsys):
    assert main(["explain"]) == 0
    out = capsys.readouterr().out
    assert "Kitten -> Linux (native)" in out
    assert "VMM memory-map inserts" in out
    assert "TOTAL" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["fig99"])


def test_trace_and_metrics_flags(tmp_path, capsys):
    import json

    trace = tmp_path / "t.json"
    metrics = tmp_path / "m.json"
    assert main(["explain", "--trace", str(trace),
                 "--metrics", "--metrics-out", str(metrics)]) == 0
    out = capsys.readouterr().out
    assert "== metrics" in out

    doc = json.loads(trace.read_text())
    spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert spans, "trace should contain completed spans"
    cats = {e["cat"] for e in spans}
    assert "xemem" in cats and "pisces" in cats

    snap = json.loads(metrics.read_text())
    assert len(snap) >= 10
    assert snap["xemem.attach.count"] >= 1


def test_jsonl_trace_format(tmp_path):
    import json

    trace = tmp_path / "t.jsonl"
    assert main(["explain", "--trace", str(trace),
                 "--trace-format", "jsonl"]) == 0
    lines = [json.loads(line)
             for line in trace.read_text().splitlines() if line]
    assert lines and all("name" in rec and "start_ns" in rec for rec in lines)


def test_inspect_command(tmp_path, capsys):
    trace = tmp_path / "t.json"
    assert main(["explain", "--trace", str(trace)]) == 0
    capsys.readouterr()
    assert main(["inspect", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "spans" in out
    assert "xemem.attach" in out
    assert "per track" in out


def test_inspect_shows_per_name_duration_stats(tmp_path, capsys):
    trace = tmp_path / "t.json"
    assert main(["explain", "--trace", str(trace)]) == 0
    capsys.readouterr()
    assert main(["inspect", str(trace)]) == 0
    out = capsys.readouterr().out
    for col in ("count", "total ms", "mean us", "max us"):
        assert col in out
    assert "WARNING" not in out  # nothing dropped


def test_inspect_attribute_flag_adds_breakdown(tmp_path, capsys):
    trace = tmp_path / "t.json"
    assert main(["explain", "--trace", str(trace)]) == 0
    capsys.readouterr()
    assert main(["inspect", str(trace), "--attribute"]) == 0
    out = capsys.readouterr().out
    assert "per-subsystem cost attribution" in out
    assert "critical path:" in out


def _truncated_trace(tmp_path):
    """A Chrome trace recorded with a tiny ring cap (spans dropped)."""
    from repro import obs
    from repro.bench import figures

    trace = tmp_path / "t.json"
    with obs.observing(trace=True, metrics=False, max_trace_events=5) as ctx:
        figures.fig5_throughput(reps=1)
    assert ctx.tracer.dropped > 0
    with open(trace, "w") as fp:
        ctx.tracer.to_chrome(fp)
    return trace, ctx.tracer.dropped


def test_inspect_warns_loudly_about_dropped_spans(tmp_path, capsys):
    trace, dropped = _truncated_trace(tmp_path)
    assert main(["inspect", str(trace)]) == 0  # inspect stays advisory
    out = capsys.readouterr().out
    assert f"WARNING: {dropped} spans were DROPPED" in out
    assert "TRUNCATED" in out


def test_report_exits_3_when_spans_were_dropped(tmp_path, capsys):
    """Truncated attribution is a CI failure, not a footnote: report
    still prints the warning but exits 3."""
    trace, dropped = _truncated_trace(tmp_path)
    assert main(["report", str(trace)]) == 3
    out = capsys.readouterr().out
    assert f"WARNING: {dropped} spans were DROPPED" in out
    assert "TRUNCATED" in out


def test_report_json_surfaces_drop_counts(tmp_path, capsys):
    import json

    trace, dropped = _truncated_trace(tmp_path)
    assert main(["report", str(trace), "--json"]) == 3
    doc = json.loads(capsys.readouterr().out)
    assert doc["dropped"] == dropped
    assert doc["truncated"] is True
    assert doc["coverage"] <= 1.0
    assert doc["by_subsystem"]


def test_report_json_clean_trace_exits_0(tmp_path, capsys):
    import json

    trace = tmp_path / "t.json"
    assert main(["explain", "--trace", str(trace)]) == 0
    capsys.readouterr()
    assert main(["report", str(trace), "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["dropped"] == 0
    assert doc["truncated"] is False
    assert doc["spans"] > 0
    assert {"name", "count", "total_ns"} <= set(doc["operations"][0])


def test_report_command_attributes_a_fig5_trace(tmp_path, capsys):
    """Acceptance: a Table-2-style breakdown whose buckets cover >= 95%
    of the recorded span time of a Fig. 5 run."""
    import re

    trace = tmp_path / "t.json"
    assert main(["fig5", "--reps", "1", "--trace", str(trace)]) == 0
    capsys.readouterr()
    assert main(["report", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "per-subsystem cost attribution" in out
    for bucket in ("channel", "ipi", "xemem"):
        assert bucket in out
    assert "TOTAL (attributed)" in out
    (coverage,) = re.findall(r"coverage ([0-9.]+)%", out.splitlines()[0])
    assert float(coverage) >= 95.0


def test_report_round_trips_jsonl_traces(tmp_path, capsys):
    trace = tmp_path / "t.jsonl"
    assert main(["explain", "--trace", str(trace),
                 "--trace-format", "jsonl"]) == 0
    capsys.readouterr()
    assert main(["report", str(trace)]) == 0
    assert "per-subsystem cost attribution" in capsys.readouterr().out


def test_report_rejects_garbage_input(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("this is not a trace")
    with pytest.raises(SystemExit, match="not a Chrome-trace or JSONL"):
        main(["report", str(bad)])
    with pytest.raises(SystemExit, match="cannot read"):
        main(["report", str(tmp_path / "absent.json")])


def test_inspect_requires_target():
    with pytest.raises(SystemExit):
        main(["inspect"])


def test_report_requires_target():
    with pytest.raises(SystemExit):
        main(["report"])


def test_profile_flag(capsys):
    assert main(["explain", "--profile"]) == 0
    out = capsys.readouterr().out
    assert "hot path" in out


# -- serve-report --------------------------------------------------------------

SERVE_ARGS = ["serve-report", "--seed", "3", "--sessions", "3", "--ops", "2",
              "--pages", "4", "--window-ns", "50000"]


def test_serve_report_prints_summary_and_verdicts(capsys):
    assert main(list(SERVE_ARGS)) == 0
    out = capsys.readouterr().out
    assert "serve seed=3" in out
    assert "ops: 6 total" in out
    assert "windows:" in out
    assert "SLOs:" in out
    assert "journeys" in out


def test_serve_report_writes_all_exports_byte_identically(tmp_path, capsys):
    out_a, out_b = tmp_path / "a", tmp_path / "b"
    assert main(SERVE_ARGS + ["--out-dir", str(out_a)]) == 0
    assert main(SERVE_ARGS + ["--out-dir", str(out_b)]) == 0
    capsys.readouterr()
    names = ["dashboard.html", "flamegraph.folded", "metrics.prom",
             "timeseries.json", "slo.json", "journeys.json"]
    for name in names:
        a, b = (out_a / name).read_bytes(), (out_b / name).read_bytes()
        assert a, f"{name} is empty"
        assert a == b, f"{name} differs between identical runs"
    # the engine/fastpath internals never leak into the exports
    prom = (out_a / "metrics.prom").read_text()
    assert "engine_" not in prom and "fastpath_" not in prom


def test_serve_report_fail_on_violation_exit_code(capsys):
    # an impossible objective must trip the violation exit code (4)
    args = SERVE_ARGS + ["--slo", "xemem.attach.ns.p99 < 1ns",
                         "--fail-on-violation"]
    assert main(args) == 4
    out = capsys.readouterr().out
    assert "VIOLATED" in out
    # without the flag the same violations only report, exit 0
    assert main(SERVE_ARGS + ["--slo", "xemem.attach.ns.p99 < 1ns"]) == 0


def test_serve_report_rejects_bad_slo_spec():
    with pytest.raises(SystemExit):
        main(["serve-report", "--slo", "not a spec"])
