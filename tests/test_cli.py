"""Smoke tests for the ``python -m repro`` command line."""

import pytest

from repro.__main__ import main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("fig5", "fig6", "fig7", "fig8", "fig9", "table2",
                 "ablations", "explain"):
        assert name in out


def test_fig5_command(capsys):
    assert main(["fig5", "--reps", "2"]) == 0
    out = capsys.readouterr().out
    assert "Figure 5" in out
    assert "attach GiB/s" in out
    assert "regenerated" in out


def test_fig7_command(capsys):
    assert main(["fig7", "--seconds", "3"]) == 0
    out = capsys.readouterr().out
    assert "Figure 7" in out
    assert "SMI" in out


def test_explain_command(capsys):
    assert main(["explain"]) == 0
    out = capsys.readouterr().out
    assert "Kitten -> Linux (native)" in out
    assert "VMM memory-map inserts" in out
    assert "TOTAL" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["fig99"])
