"""Enclave failure: crash semantics, reclamation, lease GC, NS restart."""

import pytest

from repro.faults import CRASH, FaultEvent, FaultPlan
from repro.hw.costs import PAGE_4K
from repro.pisces.pisces import PartitionError
from repro.xemem import XememError, XememTimeout, XpmemApi

from tests.faults.conftest import build_rig, table1_cycle


def test_crash_mid_attach_fails_waiters_and_reclaims():
    """The acceptance scenario: a seeded crash lands mid-protocol.

    Clients parked on the dead enclave must get XememTimeout/XememError
    (never hang), its partition frames return to the zone allocator, its
    segids are retired at the name server, and the auditor stays green.
    """
    plan = FaultPlan.parse("timeout=100us,retries=1,crash=kitten0@1us", seed=0)
    rig = build_rig(plan=plan)
    eng = rig.engine
    zone1 = rig.node.memory.zone(1).allocator
    free_before = zone1.free_frames
    victim = rig.cokernels[0]
    nframes = victim.kernel.allocator.nframes
    failures = []

    def client():
        try:
            yield from table1_cycle(rig)
        except (XememTimeout, XememError) as err:
            failures.append(err)

    eng.spawn(client(), name="doomed-client")
    eng.run()

    assert eng.queue_len == 0 and eng.live_processes == ()
    assert len(failures) == 1  # failed fast, did not hang
    # partition frames are back in the zone, enclave is gone
    assert zone1.free_frames == free_before + nframes
    assert victim not in rig.system.enclaves
    assert victim not in rig.pisces.cokernel_enclaves
    # the name server retired the dead enclave's id
    ns = rig.system.name_server_enclave.module.nameserver
    assert victim.enclave_id in ns.retired_enclaves
    rig.auditor.auditor.audit_now(eng.now, quiescent=True)


def test_survivor_attachments_invalidated_on_crash():
    """A completed cross-enclave attachment dies with its exporter: the
    survivor's mapping is torn down (marked detached, region unmapped)
    without double-freeing the dead enclave's frames."""
    rig = build_rig()
    eng = rig.engine
    exporter = rig.cokernels[0]
    kp = exporter.kernel.create_process("exp")
    lp = rig.linux.kernel.create_process("att", core_id=2)
    heap = exporter.kernel.heap_region(kp)

    def setup():
        api_k, api_l = XpmemApi(kp), XpmemApi(lp)
        segid = yield from api_k.xpmem_make(heap.start, 4 * PAGE_4K)
        apid = yield from api_l.xpmem_get(segid)
        att = yield from api_l.xpmem_attach(apid)
        return segid, att

    segid, att = eng.run_process(setup())
    assert not att.detached
    rig.pisces.crash_enclave(exporter, system=rig.system)

    assert att.detached
    assert att.region not in lp.aspace.regions
    with pytest.raises(RuntimeError):
        att.read(0, 8)
    # the survivor's module dropped the dead grant entirely
    assert rig.linux.module.grants == {}
    ns = rig.system.name_server_enclave.module.nameserver
    with pytest.raises(XememError, match="retired"):
        ns.owner_of(int(segid))
    rig.auditor.auditor.audit_now(eng.now, quiescent=True)


def test_survivors_keep_working_after_crash():
    plan = FaultPlan(events=[FaultEvent(1_000, CRASH, "kitten0")])
    rig = build_rig(plan=plan)
    eng = rig.engine
    eng.run()  # let the crash fire
    assert rig.engine.faults.counts["crashes"] == 1
    # a fresh full cycle against the surviving co-kernel succeeds
    module, segid = eng.run_process(table1_cycle(rig, exporter_idx=1))
    assert module.segments[int(segid)].grants_out == 0
    rig.auditor.auditor.audit_now(eng.now, quiescent=True)


def test_crash_is_fail_stop_and_unpartitioned():
    rig = build_rig()
    victim = rig.cokernels[0]
    rig.pisces.crash_enclave(victim, system=rig.system)
    assert victim.module.crashed
    victim.module.crash()  # idempotent
    # a second crash of the same enclave is a partition error
    with pytest.raises(PartitionError):
        rig.pisces.crash_enclave(victim, system=rig.system)
    # the management (Linux) enclave is not a crashable partition
    with pytest.raises(PartitionError):
        rig.pisces.crash_enclave(rig.linux, system=rig.system)


def test_heartbeat_lease_gc_collects_dead_enclave():
    """With heartbeats on, the injector does NOT tell the name server
    about the crash — the lease expiry is the failure detector."""
    plan = FaultPlan.parse(
        "hb=100us,lease=500us,horizon=3ms,crash=kitten0@1ms", seed=0
    )
    rig = build_rig(plan=plan)
    eng = rig.engine
    exporter = rig.cokernels[0]
    kp = exporter.kernel.create_process("exp")
    heap = exporter.kernel.heap_region(kp)
    eng.spawn(XpmemApi(kp).xpmem_make(heap.start, 4 * PAGE_4K,
                                      name="doomed/seg"), name="make")
    ns = rig.system.name_server_enclave.module.nameserver
    eng.run(until_ns=900_000)  # export done, crash not yet fired
    assert ns.live_segments == 1
    eng.run()

    assert eng.queue_len == 0  # horizon bounded the beacon daemons
    assert rig.engine.faults.counts["heartbeats_sent"] > 0
    # the lease sweep (not a direct notification) retired the enclave
    assert exporter.enclave_id in ns.retired_enclaves
    assert ns.live_segments == 0
    assert ns.lookup_name("doomed/seg") is None


def test_nameserver_restart_drops_then_recovers():
    """During the outage window the NS drops everything (clients retry
    through it); its restart also wipes the replay cache and re-stamps
    leases so survivors are not GC'd for beacons lost to the outage."""
    plan = FaultPlan.parse(
        "timeout=200us,retries=6,nsrestart=@1us:100us", seed=0
    )
    rig = build_rig(plan=plan)
    module, segid = rig.engine.run_process(table1_cycle(rig))
    rig.engine.run()
    assert rig.engine.faults.counts["ns_restarts"] == 1
    assert module.segments[int(segid)].grants_out == 0
    assert rig.engine.queue_len == 0
    # a restart wipes the replay/dedup caches (the cycle above refilled
    # them after the scheduled restart fired)
    ns_module = rig.system.name_server_enclave.module
    assert ns_module._served_responses
    ns_module.restart_nameserver()
    assert ns_module._served_responses == {} and ns_module._in_service == set()


def test_crash_unknown_target_is_skipped():
    plan = FaultPlan(events=[
        FaultEvent(1_000, CRASH, "no-such-enclave"),
        FaultEvent(2_000, CRASH, "linux"),  # not a crashable partition
    ])
    rig = build_rig(plan=plan)
    rig.engine.run()
    assert rig.engine.faults.counts["events_skipped"] == 2
    assert rig.engine.faults.counts["crashes"] == 0
    # the rig is untouched: a normal cycle still runs
    module, segid = rig.engine.run_process(table1_cycle(rig))
    assert module.segments[int(segid)].grants_out == 0


def test_force_shutdown_fails_inflight_requests():
    """Satellite: ``shutdown(force=True)`` must fail parked ``_request``
    waiters instead of leaving them hanging forever."""
    rig = build_rig()
    eng = rig.engine
    exporter, attacher = rig.cokernels
    kp = exporter.kernel.create_process("exp")
    heap = exporter.kernel.heap_region(kp)
    segid = eng.run_process(XpmemApi(kp).xpmem_make(heap.start, 4 * PAGE_4K))

    # silence the owner so the attacher's GET parks forever (no deadline)
    exporter.module.crashed = True
    ap = attacher.kernel.create_process("att")
    outcome = []

    def stuck_client():
        try:
            yield from XpmemApi(ap).xpmem_get(segid)
            outcome.append("completed")
        except XememError as err:
            outcome.append(str(err))

    eng.spawn(stuck_client(), name="stuck")
    eng.run()
    assert outcome == []  # parked in _pending, engine drained around it
    assert attacher.module._pending

    rig.system.shutdown_enclave(attacher, force=True)
    eng.run()
    assert outcome == [f"enclave {attacher.name!r} departed"]
    assert eng.live_processes == ()
    assert attacher.module._pending == {}
