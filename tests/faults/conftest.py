"""Shared helpers for the fault-injection tests.

Everything here builds on the standard §5 co-kernel rig
(:func:`repro.bench.configs.build_cokernel_system`), which arms the
fault plan only *after* discovery — so the baseline topology always
forms and the plan hits steady-state protocol traffic.
"""

from repro.bench.configs import build_cokernel_system
from repro.hw.costs import PAGE_4K
from repro.xemem import XpmemApi


def build_rig(num_cokernels=2, plan=None, with_audit=True):
    """The standard rig with the auditor on (tests want invariants hot)."""
    return build_cokernel_system(
        num_cokernels=num_cokernels, with_audit=with_audit, fault_plan=plan
    )


def table1_cycle(rig, pages=4, exporter_idx=0):
    """Generator: one full cross-enclave Table 1 cycle on ``rig``.

    kitten<exporter_idx> exports ``pages`` pages; a Linux process runs
    get → attach → read → detach → release against it. Returns the
    exporting module and the segid so callers can assert on owner state.
    """
    exporter = rig.cokernels[exporter_idx]
    kp = exporter.kernel.create_process("exp")
    lp = rig.linux.kernel.create_process("att", core_id=2)
    heap = exporter.kernel.heap_region(kp)
    api_k, api_l = XpmemApi(kp), XpmemApi(lp)
    segid = yield from api_k.xpmem_make(heap.start, pages * PAGE_4K)
    apid = yield from api_l.xpmem_get(segid)
    att = yield from api_l.xpmem_attach(apid)
    att.read(0, 8)
    yield from api_l.xpmem_detach(att)
    yield from api_l.xpmem_release(apid)
    return exporter.module, segid
