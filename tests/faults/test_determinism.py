"""The fault layer's two determinism contracts.

1. Seeded reproducibility: same plan + same seed → byte-identical trace
   and identical end time, whatever the plan injects.
2. Zero-perturbation: arming an *empty* plan is byte-identical to not
   arming anything, on both the fast and slow engine paths.
"""

import io

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import obs
from repro.faults import CRASH, FaultEvent, FaultPlan
from repro.sim import fastpath
from repro.xemem import XememError, XememTimeout

from tests.faults.conftest import build_rig, table1_cycle


def _traced_cycle(plan):
    """Run one Table 1 cycle under ``plan``; returns (jsonl_bytes, end_ns)."""
    with obs.observing(trace=True, metrics=False, engine=False):
        rig = build_rig(plan=plan, with_audit=False)
        try:
            rig.engine.run_process(table1_cycle(rig))
        except (XememTimeout, XememError):
            pass  # aggressive plans may kill the cycle; determinism still holds
        rig.engine.run()
        out = io.StringIO()
        obs.get().tracer.to_jsonl(out)
        return out.getvalue(), rig.engine.now


def test_same_seed_same_bytes():
    plan = "drop=0.1,dup=0.1,delay=0.1:30us,corrupt=0.05,ipiloss=0.1," \
           "timeout=200us,retries=4,crash=kitten1@500us"
    a = _traced_cycle(FaultPlan.parse(plan, seed=7))
    b = _traced_cycle(FaultPlan.parse(plan, seed=7))
    assert a == b
    c = _traced_cycle(FaultPlan.parse(plan, seed=8))
    assert c != a  # the seed is actually consumed


def test_armed_empty_plan_is_byte_identical_to_disarmed():
    for ctx in (fastpath.enabled, fastpath.disabled):
        with ctx():
            baseline = _traced_cycle(None)
            armed_empty = _traced_cycle(FaultPlan())
            assert armed_empty == baseline, f"perturbed under {ctx.__name__}"


def test_fault_run_chaos_reports_reproduce():
    from repro.faults.chaos import run_chaos

    a = run_chaos(seed=3, cokernels=2, ops=6)
    b = run_chaos(seed=3, cokernels=2, ops=6)
    assert a == b
    assert a.drained and a.live_processes == 0


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(0, 2**16),
    crash_at_us=st.integers(0, 400),
    victim=st.integers(0, 1),
    drop=st.integers(0, 3),
    dup=st.integers(0, 3),
)
def test_random_crash_plans_always_drain(seed, crash_at_us, victim, drop, dup):
    """Whatever the plan does, the engine drains and no process leaks."""
    plan = FaultPlan(
        seed=seed,
        drop_prob=drop / 10, dup_prob=dup / 10,
        request_timeout_ns=100_000, max_retries=3,
        events=[FaultEvent(crash_at_us * 1_000, CRASH, f"kitten{victim}")],
    )
    rig = build_rig(plan=plan, with_audit=False)
    eng = rig.engine
    outcomes = []

    def client():
        try:
            yield from table1_cycle(rig)
            outcomes.append("ok")
        except (XememTimeout, XememError) as err:
            outcomes.append(type(err).__name__)

    eng.spawn(client(), name="client")
    eng.run()
    assert eng.queue_len == 0
    assert eng.live_processes == ()
    assert len(outcomes) == 1  # the client finished, one way or the other
    assert rig.engine.faults.counts["crashes"] == 1
