"""Probabilistic channel/IPI faults: recovery, dedup, and arming rules."""

import pytest

from repro.faults import FaultPlan, arm, disarm
from repro.xemem import XememTimeout

from tests.faults.conftest import build_rig, table1_cycle


def test_total_drop_times_out_and_drains():
    plan = FaultPlan.parse("drop=1.0,timeout=50us,retries=2", seed=0)
    rig = build_rig(plan=plan)
    with pytest.raises(XememTimeout) as exc:
        rig.engine.run_process(table1_cycle(rig))
    assert "unanswered after 3 attempt(s)" in str(exc.value)
    rig.engine.run()  # stale retry timers must drain cleanly
    assert rig.engine.queue_len == 0
    assert rig.engine.live_processes == ()
    injector = rig.engine.faults
    assert injector.counts["msgs_dropped"] > 0


def test_total_corruption_behaves_like_drop():
    plan = FaultPlan.parse("corrupt=1.0,timeout=50us,retries=1", seed=0)
    rig = build_rig(plan=plan)
    with pytest.raises(XememTimeout):
        rig.engine.run_process(table1_cycle(rig))
    rig.engine.run()
    assert rig.engine.queue_len == 0
    assert rig.engine.faults.counts["msgs_corrupted"] > 0


def test_total_duplication_is_deduplicated():
    """dup=1.0 doubles every delivery; req-id dedup must keep the owner's
    grant accounting exact (one grant per GET, fully released at the end)."""
    plan = FaultPlan.parse("dup=1.0,timeout=2ms,retries=2", seed=0)
    rig = build_rig(plan=plan)
    module, segid = rig.engine.run_process(table1_cycle(rig))
    rig.engine.run()
    seg = module.segments[int(segid)]
    assert seg.grants_out == 0  # the duplicated RELEASE did not double-free
    assert rig.engine.faults.counts["msgs_duplicated"] > 0
    # a duplicated response for an already-answered req_id is dropped, not
    # raised — the run ends with no live processes and an intact auditor
    assert rig.engine.live_processes == ()
    if rig.auditor is not None:
        rig.auditor.auditor.audit_now(rig.engine.now)


def test_delay_slows_but_completes():
    baseline = build_rig()
    baseline.engine.run_process(table1_cycle(baseline))
    base_end = baseline.engine.now

    plan = FaultPlan.parse("delay=1.0:100us,timeout=50ms,retries=0", seed=0)
    rig = build_rig(plan=plan)
    module, segid = rig.engine.run_process(table1_cycle(rig))
    assert module.segments[int(segid)].grants_out == 0
    assert rig.engine.now > base_end
    assert rig.engine.faults.counts["msgs_delayed"] > 0


def test_ipi_loss_is_retransmitted():
    plan = FaultPlan.parse("ipiloss=0.5,timeout=50ms,retries=0", seed=0)
    rig = build_rig(plan=plan)
    module, segid = rig.engine.run_process(table1_cycle(rig))
    assert module.segments[int(segid)].grants_out == 0  # cycle completed
    assert rig.engine.faults.counts["ipi_lost"] > 0


def test_mixed_plan_with_audit():
    """A lossy-everything plan under the full invariant auditor."""
    plan = FaultPlan.parse(
        "drop=0.1,dup=0.1,delay=0.1:20us,corrupt=0.05,ipiloss=0.1,"
        "timeout=300us,retries=6", seed=4,
    )
    rig = build_rig(plan=plan, with_audit=True)
    rig.engine.run_process(table1_cycle(rig))
    rig.engine.run()
    assert rig.engine.queue_len == 0
    rig.auditor.auditor.audit_now(rig.engine.now)


def test_arm_twice_rejected_and_disarm():
    rig = build_rig()
    injector = arm(rig, FaultPlan.parse("drop=0.5"))
    with pytest.raises(RuntimeError):
        arm(rig, FaultPlan())
    assert disarm(rig) is injector
    assert rig.engine.faults is None
    # re-arming after a disarm is fine
    arm(rig, FaultPlan())


def test_empty_plan_is_inactive():
    rig = build_rig()
    injector = arm(rig, FaultPlan())
    assert not injector.active
    assert not injector.affects_messages and not injector.affects_ipi
    # no deadlines are armed: the module parks forever like the baseline
    module = rig.cokernels[0].module
    assert module._request_policy() == (None, 0, 1)
    # and no RNG draw ever happened (state equals a fresh seeded RNG)
    import random

    assert injector.rng.getstate() == random.Random(0).getstate()
