"""The end-to-end chaos scenario and its CLI entry point.

CI runs this module under a seed matrix: ``REPRO_CHAOS_SEED`` offsets
every seed used here, so each matrix job explores a different schedule
while any single job stays reproducible.
"""

import os
import subprocess
import sys

from repro.faults.chaos import DEFAULT_PLAN_SPEC, run_chaos

#: CI matrix offset — the same tests, a different fault schedule per job.
SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))  # repro: noqa[REP103] reason=CI matrix parameter; the chosen seed is recorded in the chaos report for replay


def test_default_plan_drains_and_recovers():
    report = run_chaos(seed=SEED, with_audit=True)
    assert report.drained and report.live_processes == 0
    assert report.exported >= 1
    assert report.ops_total == report.exported * 25
    assert report.fault_counts["crashes"] == 1
    assert report.fault_counts["ns_restarts"] == 1
    # kitten1 died; the management enclave and the others survived
    assert "linux" in report.surviving_enclaves
    assert "kitten1" not in report.surviving_enclaves
    assert report.plan_spec == DEFAULT_PLAN_SPEC


def test_heavy_loss_still_converges():
    report = run_chaos(
        seed=SEED, plan_spec="drop=0.4,timeout=100us,retries=8,backoff=2",
        cokernels=2, ops=4, with_audit=True,
    )
    assert report.drained and report.live_processes == 0
    assert report.fault_counts["msgs_dropped"] > 0
    assert report.ops_total == report.exported * 4


def test_report_lines_render():
    report = run_chaos(seed=SEED, cokernels=2, ops=2)
    text = "\n".join(report.lines())
    assert f"chaos seed={SEED}" in text
    assert "drained=True" in text
    assert "survivors:" in text


def _run_chaos_cli(tmp_path, *extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    return subprocess.run(
        [sys.executable, "-m", "repro", "chaos",
         "--seed", str(SEED), "--cokernels", "2", "--ops", "3",
         "--bundle-dir", str(tmp_path / "bundle"), *extra],
        capture_output=True, text=True, env=env,
        cwd=os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))),
        timeout=240,
    )


def test_chaos_cli(tmp_path):
    out = _run_chaos_cli(tmp_path)
    assert out.returncode == 0, out.stderr
    assert f"chaos seed={SEED}" in out.stdout
    assert "drained=True" in out.stdout
    # the default plan crashes kitten1, so the run emits its black box
    assert "incident bundle:" in out.stdout
    assert (tmp_path / "bundle" / "MANIFEST.json").exists()


def test_chaos_cli_exits_2_on_unreclaimed_state(tmp_path):
    """Heartbeat-based detection with a lease that outlives the horizon:
    the dead owner's segids are never collected, so the CLI must flag
    the run (exit 2) and point at the incident bundle."""
    out = _run_chaos_cli(
        tmp_path, "--plan",
        "crash=kitten1@1ms,hb=200us,lease=20ms,horizon=2ms,"
        "timeout=300us,retries=2",
    )
    assert out.returncode == 2, out.stderr
    assert "UNRECLAIMED crash state" in out.stdout
    assert "incident bundle:" in out.stdout
    assert (tmp_path / "bundle" / "MANIFEST.json").exists()


def test_unreclaimed_detection_in_report():
    report = run_chaos(
        seed=SEED, cokernels=2, ops=3,
        plan_spec="crash=kitten1@1ms,hb=200us,lease=20ms,horizon=2ms,"
                  "timeout=300us,retries=2",
    )
    assert not report.reclaimed
    assert report.unreclaimed_segids
    assert any("UNRECLAIMED" in line for line in report.lines())
    # the default plan's direct notification path stays clean
    clean = run_chaos(seed=SEED, cokernels=2, ops=3)
    assert clean.reclaimed and not clean.unreclaimed_segids
