"""FaultPlan: spec parsing, validation, and the empty-plan contract."""

import pytest

from repro.faults import CRASH, NS_RESTART, FaultEvent, FaultPlan, parse_ns


def test_parse_ns_units():
    assert parse_ns("17") == 17
    assert parse_ns("250ns") == 250
    assert parse_ns("20us") == 20_000
    assert parse_ns("2ms") == 2_000_000
    assert parse_ns("1.5s") == 1_500_000_000


def test_parse_full_spec():
    plan = FaultPlan.parse(
        "drop=0.02,dup=0.01,delay=0.05:40us,corrupt=0.01,ipiloss=0.02,"
        "timeout=2ms,retries=3,backoff=4,hb=200us,lease=1ms,horizon=50ms,"
        "crash=kitten1@5ms,nsrestart=@10ms:500us",
        seed=9,
    )
    assert plan.seed == 9
    assert plan.drop_prob == 0.02 and plan.dup_prob == 0.01
    assert plan.delay_prob == 0.05 and plan.delay_ns == 40_000
    assert plan.corrupt_prob == 0.01 and plan.ipi_loss_prob == 0.02
    assert plan.request_timeout_ns == 2_000_000
    assert plan.max_retries == 3 and plan.backoff_factor == 4
    assert plan.heartbeats and plan.heartbeat_period_ns == 200_000
    assert plan.lease_ns == 1_000_000 and plan.horizon_ns == 50_000_000
    assert plan.events == [
        FaultEvent(at_ns=5_000_000, action=CRASH, target="kitten1"),
        FaultEvent(at_ns=10_000_000, action=NS_RESTART, duration_ns=500_000),
    ]
    assert plan.affects_messages and not plan.empty


def test_events_sorted_by_time():
    plan = FaultPlan(events=[
        FaultEvent(at_ns=900, action=NS_RESTART),
        FaultEvent(at_ns=100, action=CRASH, target="k"),
    ])
    assert [ev.at_ns for ev in plan.events] == [100, 900]


def test_with_seed_copies():
    plan = FaultPlan.parse("drop=0.5", seed=0)
    other = plan.with_seed(3)
    assert other.seed == 3 and other.drop_prob == 0.5
    assert plan.seed == 0  # original untouched


def test_empty_plan_detection():
    assert FaultPlan().empty
    # a pure policy change (timeout/retries) with no faults is still empty
    assert FaultPlan(request_timeout_ns=1000, max_retries=1).empty
    assert not FaultPlan(drop_prob=0.1).empty
    assert not FaultPlan(ipi_loss_prob=0.1).empty
    assert not FaultPlan(events=[FaultEvent(0, CRASH, "k")]).empty
    assert not FaultPlan(heartbeats=True, horizon_ns=1_000_000).empty


def test_empty_plan_detection_avoids_float_equality():
    # Regression (REP004 cleanup): `empty` used to compare
    # ipi_loss_prob == 0.0; the truthiness form must treat both float
    # and integer zero as "off" and any positive probability as armed.
    assert FaultPlan(ipi_loss_prob=0.0).empty
    assert FaultPlan(ipi_loss_prob=0).empty
    assert not FaultPlan(ipi_loss_prob=1e-12).empty


@pytest.mark.parametrize("bad", [
    dict(drop_prob=1.5),
    dict(dup_prob=-0.1),
    dict(drop_prob=0.6, delay_prob=0.6),  # outcomes sum > 1
    dict(request_timeout_ns=0),
    dict(max_retries=-1),
    dict(backoff_factor=0),
    dict(heartbeats=True),  # no horizon
    dict(heartbeats=True, horizon_ns=10**6, lease_ns=100,
         heartbeat_period_ns=200),  # lease <= period
])
def test_plan_validation(bad):
    with pytest.raises(ValueError):
        FaultPlan(**bad)


@pytest.mark.parametrize("spec", [
    "drop",                 # no '='
    "wibble=1",             # unknown key
    "crash=kitten1",        # no @time
])
def test_spec_validation(spec):
    with pytest.raises(ValueError):
        FaultPlan.parse(spec)


def test_event_validation():
    with pytest.raises(ValueError):
        FaultEvent(at_ns=-1, action=CRASH, target="k")
    with pytest.raises(ValueError):
        FaultEvent(at_ns=0, action="meteor")
    with pytest.raises(ValueError):
        FaultEvent(at_ns=0, action=CRASH)  # crash needs a target
