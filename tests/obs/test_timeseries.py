"""Tests for tumbling-window time-series aggregation (repro.obs.timeseries)."""

import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import (
    TimeSeriesHook,
    TimeSeriesRecorder,
    bucket_quantile,
)


# -- bucket_quantile (delta-bucket quantiles, no exact min/max) ----------------

def test_bucket_quantile_empty_returns_zero():
    assert bucket_quantile((10, 100), (0, 0, 0), 0.5) == 0.0


@pytest.mark.parametrize("q", [-0.01, 1.01, 2.0])
def test_bucket_quantile_rejects_out_of_range_q(q):
    with pytest.raises(ValueError):
        bucket_quantile((10,), (1, 0), q)


def test_bucket_quantile_first_bucket_interpolates_up_from_zero():
    # all 10 samples in (-inf, 10]: lo=0, hi=10, median at rank 5 -> 5.0
    assert bucket_quantile((10, 100), (10, 0, 0), 0.5) == pytest.approx(5.0)


def test_bucket_quantile_overflow_clamps_to_last_finite_bound():
    # every sample beyond the last bound: no range to interpolate over,
    # the estimate clamps to that bound rather than inventing +inf
    assert bucket_quantile((10, 100), (0, 0, 7), 0.99) == pytest.approx(100.0)
    assert bucket_quantile((10, 100), (0, 0, 7), 1.0) == pytest.approx(100.0)


def test_bucket_quantile_interpolates_inside_middle_bucket():
    # 10 below 10, 90 in (10,100]; p50 rank=50 -> 10 + 90*(40/90) = 50
    assert bucket_quantile((10, 100), (10, 90, 0), 0.5) == pytest.approx(50.0)


# -- recorder windows ----------------------------------------------------------

def _registry():
    reg = MetricsRegistry()
    c = reg.counter("xemem.ops.count")
    g = reg.gauge("queue.depth")
    h = reg.histogram("xemem.attach.ns", bounds=(10, 100))
    return reg, c, g, h


def test_recorder_rejects_nonpositive_window():
    reg, *_ = _registry()
    with pytest.raises(ValueError):
        TimeSeriesRecorder(reg, window_ns=0)


def test_counter_deltas_attributed_to_their_windows():
    reg, c, g, h = _registry()
    rec = TimeSeriesRecorder(reg, window_ns=100)
    c.inc(3)
    rec.advance(100)           # closes [0,100)
    c.inc(5)
    rec.advance(250)           # closes only full windows: [100,200);
                               # the partial [200,250) stays open
    w = rec.windows
    assert [x.index for x in w] == [0, 1]
    assert w[0].start_ns == 0 and w[0].end_ns == 100
    assert w[0].counters == {"xemem.ops.count": 3}
    assert w[1].counters == {"xemem.ops.count": 5}


def test_quiet_windows_omit_zero_deltas_but_keep_gauge_levels():
    reg, c, g, h = _registry()
    rec = TimeSeriesRecorder(reg, window_ns=100)
    c.inc()
    g.set(7.5)
    rec.advance(300)  # three windows; activity only in the first
    w = rec.windows
    assert len(w) == 3
    assert w[0].counters == {"xemem.ops.count": 1}
    assert w[1].counters == {} and w[2].counters == {}
    # gauges report the current level every window, not a delta
    assert all(x.gauges["queue.depth"] == 7.5 for x in w)


def test_histogram_windows_carry_delta_buckets():
    reg, c, g, h = _registry()
    rec = TimeSeriesRecorder(reg, window_ns=100)
    h.observe(5)
    h.observe(50)
    rec.advance(100)
    h.observe(50)
    rec.advance(200)
    w = rec.windows
    hw0 = w[0].histograms["xemem.attach.ns"]
    hw1 = w[1].histograms["xemem.attach.ns"]
    assert hw0.count == 2 and hw0.bucket_deltas == (1, 1, 0)
    assert hw0.total == pytest.approx(55.0)
    assert hw0.mean == pytest.approx(27.5)
    # the second window sees only its own sample, not the cumulative state
    assert hw1.count == 1 and hw1.bucket_deltas == (0, 1, 0)
    assert hw1.quantile(0.5) == pytest.approx(10 + 90 * 0.5)


def test_windows_without_histogram_activity_omit_the_histogram():
    reg, c, g, h = _registry()
    rec = TimeSeriesRecorder(reg, window_ns=100)
    h.observe(5)
    rec.advance(200)
    w = rec.windows
    assert "xemem.attach.ns" in w[0].histograms
    assert w[1].histograms == {}


def test_finish_flushes_partial_window_and_is_idempotent():
    reg, c, g, h = _registry()
    rec = TimeSeriesRecorder(reg, window_ns=100)
    c.inc(2)
    rec.finish(150)  # [0,100) full + [100,150) partial
    assert [(_w.start_ns, _w.end_ns) for _w in rec.windows] == [
        (0, 100), (100, 150),
    ]
    before = len(rec)
    rec.finish(150)  # same instant: no new window
    assert len(rec) == before


def test_ring_cap_evicts_oldest_and_counts_drops():
    reg, c, g, h = _registry()
    rec = TimeSeriesRecorder(reg, window_ns=100, max_windows=2)
    rec.advance(500)  # five windows, cap two
    assert len(rec) == 2
    assert rec.dropped == 3
    assert [w.index for w in rec.windows] == [3, 4]
    assert rec.to_doc()["dropped_windows"] == 3


def test_to_doc_and_to_json_exclude_prefixes_and_sort():
    reg, c, g, h = _registry()
    reg.counter("engine.events.count").inc(9)
    c.inc()
    h.observe(50)
    rec = TimeSeriesRecorder(reg, window_ns=100)
    rec.finish(100)
    doc = rec.to_doc(exclude_prefixes=("engine.",))
    (win,) = doc["windows"]
    assert "engine.events.count" not in win["counters"]
    assert win["counters"] == {"xemem.ops.count": 1}
    assert {"count", "mean", "p50", "p95", "p99"} <= set(
        win["histograms"]["xemem.attach.ns"]
    )
    # serialization is valid JSON and round-trips the doc
    text = rec.to_json(exclude_prefixes=("engine.",))
    assert json.loads(text) == json.loads(
        json.dumps(doc, sort_keys=True)
    )


# -- engine hook ---------------------------------------------------------------

class _FakeEngine:
    """Stand-in with just the hook's surface; its clock is test input."""

    def __init__(self):
        self.now = 0  # repro: noqa[REP006] reason=fake engine, not the simulator clock


def test_hook_closes_windows_before_the_event_runs():
    reg, c, g, h = _registry()
    rec = TimeSeriesRecorder(reg, window_ns=100)
    hook = TimeSeriesHook(rec)
    eng = _FakeEngine()

    c.inc()                       # written at t=0
    eng.now = 250  # repro: noqa[REP006] reason=fake engine, not the simulator clock
    hook.run_event(eng, c.inc)    # event at t=250 increments again
    # the boundary closed [0,100) and [100,200) *before* the callback,
    # so the t=0 write sits in window 0 and the t=250 write is pending
    w = rec.windows
    assert len(w) == 2
    assert w[0].counters == {"xemem.ops.count": 1}
    assert w[1].counters == {}
    rec.finish(250)
    assert rec.windows[-1].counters == {"xemem.ops.count": 1}


def test_hook_fast_guard_skips_advance_inside_a_window():
    reg, c, g, h = _registry()
    rec = TimeSeriesRecorder(reg, window_ns=100)
    hook = TimeSeriesHook(rec)
    eng = _FakeEngine()
    ran = []
    eng.now = 50  # repro: noqa[REP006] reason=fake engine, not the simulator clock
    hook.run_event(eng, ran.append, (1,))
    assert ran == [1]
    assert len(rec) == 0                 # no boundary passed, no close
    assert rec.next_close_ns == 100      # guard untouched mid-window


def test_hook_passes_events_through_an_inner_observer():
    class Inner:
        def __init__(self):
            self.calls = []
            self.events_executed = 41

        def run_event(self, engine, callback, args=()):
            self.calls.append(callback)
            callback(*args)

        def hot_sites(self, top=15):
            return ["site"]

    reg, c, g, h = _registry()
    rec = TimeSeriesRecorder(reg, window_ns=100)
    inner = Inner()
    hook = TimeSeriesHook(rec, inner=inner)
    eng = _FakeEngine()
    hook.run_event(eng, c.inc)
    assert c.value == 1 and inner.calls
    # the EngineObserver surface proxies through to the inner observer
    assert hook.events_executed == 41
    assert hook.hot_sites() == ["site"]
