"""Tests for span-tree reconstruction and cost attribution."""

import io

import pytest

from repro.obs import Tracer, analysis
from repro.obs.analysis import SpanNode
from repro.sim import Engine

from tests.obs.test_tracer import build_reference_trace


def node(name, start, end, span_id=None, parent_id=None, **attrs):
    return SpanNode(span_id=span_id, parent_id=parent_id, name=name,
                    track="t", start_ns=start, end_ns=end, attrs=attrs)


# -- subsystem mapping ---------------------------------------------------------

@pytest.mark.parametrize("name,bucket", [
    ("kernel.pagetable.walk", "pagetable"),
    ("kernel.map_remote", "map_install"),
    ("linux.map_remote", "map_install"),
    ("kernel.fault", "map_install"),
    ("pisces.transfer", "channel"),
    ("nic.rdma_write", "nic"),
    ("xemem.attach", "xemem"),
    ("noise.detour", "noise"),
    ("something.else", "other"),
])
def test_subsystem_of(name, bucket):
    assert analysis.subsystem_of(name) == bucket


# -- loading and linking -------------------------------------------------------

def test_from_tracer_links_the_tree():
    tr = Tracer()
    build_reference_trace(tr)
    trace = analysis.from_tracer(tr)
    assert len(trace) == 3
    attach = next(r for r in trace.roots if r.name == "xemem.attach")
    assert [c.name for c in attach.children] == ["pisces.transfer"]
    assert attach.duration_ns == 400
    assert attach.children[0].duration_ns == 250


def test_chrome_export_round_trips_the_tree():
    tr = Tracer()
    build_reference_trace(tr)
    buf = io.StringIO()
    tr.to_chrome(buf)
    trace = analysis.load_trace(io.StringIO(buf.getvalue()))
    attach = next(r for r in trace.roots if r.name == "xemem.attach")
    assert [c.name for c in attach.children] == ["pisces.transfer"]
    assert attach.track == "kitten0"
    assert attach.children[0].track == "linux<->kitten0"
    assert attach.attrs == {"npages": 4}  # span ids consumed, not kept
    assert trace.dropped == 0


def test_jsonl_export_round_trips_the_tree_and_drop_count():
    tr = Tracer(max_events=2)
    eng = Engine()

    def proc():
        for i in range(5):
            with tr.span(f"op{i}", eng):
                yield eng.sleep(10)

    eng.run_process(proc())
    buf = io.StringIO()
    tr.to_jsonl(buf)
    trace = analysis.load_trace(io.StringIO(buf.getvalue()))
    assert len(trace) == 2
    assert trace.dropped == 3


def test_orphan_parent_ids_become_roots():
    spans = [node("a", 0, 100, span_id=1, parent_id=999)]
    trace = analysis.TraceData(spans=spans, roots=analysis._link(spans))
    assert trace.roots == spans


# -- exclusive time ------------------------------------------------------------

def test_exclusive_time_subtracts_merged_child_union():
    parent = node("p", 0, 1000)
    # overlapping children merge: [100,400) u [300,600) = 500ns covered
    parent.children = [node("c1", 100, 400), node("c2", 300, 600)]
    assert analysis.exclusive_ns(parent) == 500


def test_exclusive_time_clips_children_to_parent():
    parent = node("p", 100, 200)
    parent.children = [node("c", 0, 1000)]  # sloppy child overshoots
    assert analysis.exclusive_ns(parent) == 0


def test_transfer_exclusive_time_splits_channel_vs_ipi():
    t = node("pisces.transfer", 0, 1000, marshal_ns=600)
    assert analysis._split_buckets(t) == {"channel": 600, "ipi": 400}
    # no marshal attr -> everything stays in the channel bucket
    t2 = node("pisces.transfer", 0, 1000)
    assert analysis._split_buckets(t2) == {"channel": 0, "ipi": 1000}


# -- attribution ---------------------------------------------------------------

def _two_op_trace():
    attach = node("xemem.attach", 0, 1000, span_id=1)
    transfer = node("pisces.transfer", 100, 700, span_id=2, parent_id=1,
                    marshal_ns=400)
    walk = node("kernel.pagetable.walk", 700, 900, span_id=3, parent_id=1)
    make = node("xemem.make", 2000, 2300, span_id=4)
    spans = [attach, transfer, walk, make]
    return analysis.TraceData(spans=spans, roots=analysis._link(spans))


def test_attribute_buckets_and_coverage():
    attribution = analysis.attribute(_two_op_trace())
    # attach: 1000 total = 400 channel + 200 ipi + 200 pagetable + 200 xemem
    # make: 300 xemem
    assert attribution.total_ns == 1300
    assert attribution.by_subsystem == {
        "xemem": 500, "channel": 400, "pagetable": 200, "ipi": 200,
    }
    assert attribution.attributed_ns == 1300
    assert attribution.coverage == pytest.approx(1.0)
    ops = {op.name: op for op in attribution.operations}
    assert ops["xemem.attach"].count == 1
    assert ops["xemem.attach"].by_subsystem["channel"] == 400
    assert ops["xemem.make"].by_subsystem == {"xemem": 300}


def test_attribute_skips_instants_and_ranks_by_total():
    spans = [
        node("marker", 50, 50, span_id=1),       # zero-duration instant
        node("big", 0, 1000, span_id=2),
        node("small", 0, 10, span_id=3),
    ]
    trace = analysis.TraceData(spans=spans, roots=analysis._link(spans))
    attribution = analysis.attribute(trace)
    assert [op.name for op in attribution.operations] == ["big", "small"]
    assert attribution.total_ns == 1010


def test_critical_path_follows_longest_child():
    root = node("a", 0, 1000)
    short = node("b", 0, 100)
    long = node("c", 100, 900)
    leaf = node("d", 200, 700)
    long.children = [leaf]
    root.children = [short, long]
    assert analysis.critical_path(root) == [
        ("a", 1000), ("c", 800), ("d", 500),
    ]


def test_aggregated_ops_keep_the_longest_exemplar_critical_path():
    spans = [
        node("op", 0, 100, span_id=1),
        node("op", 200, 800, span_id=2),
        node("inner", 300, 500, span_id=3, parent_id=2),
    ]
    trace = analysis.TraceData(spans=spans, roots=analysis._link(spans))
    (op,) = analysis.attribute(trace).operations
    assert op.count == 2
    assert op.critical_path == [("op", 600), ("inner", 200)]


# -- rendering -----------------------------------------------------------------

def test_render_report_shows_tables_and_critical_path():
    text = analysis.render_report(analysis.attribute(_two_op_trace()),
                                  source="test")
    assert "per-subsystem cost attribution" in text
    assert "coverage 100.0%" in text
    assert "TOTAL (attributed)" in text
    assert "channel" in text and "ipi" in text
    assert "critical path: xemem.attach" in text
    assert "WARNING" not in text


def test_render_report_warns_on_dropped_spans():
    attribution = analysis.attribute(_two_op_trace())
    attribution.dropped = 17
    text = analysis.render_report(attribution)
    assert "WARNING: 17 spans were dropped" in text
    assert "TRUNCATED" in text
