"""Differential regression attribution (``repro.obs.diff``).

Identical twins must diff to zero (that is the repo's differential
contract restated as a perf tool); a synthetic regression with a known
cause must be attributed to the right subsystem and span name with full
coverage; and the acceptance pair — Fig. 5 captured under fast vs
detailed fidelity — must attribute at least 95% of whatever end-to-end
delta exists (here: exactly zero, which counts as fully attributed).
"""

import json

from repro import obs
from repro.obs import diff
from repro.obs.tracer import Tracer
from repro.sim import fidelity


class _Clock:
    """A stand-in engine: just a settable virtual ``now``."""

    def __init__(self):
        self.now = 0  # repro: noqa[REP006] reason=synthetic span-clock stub for capture fixtures; no simulation runs on it


def _write_capture(path, pagetable_end_ns):
    """One ``xemem.attach`` root with one pagetable child; the child ends
    at ``pagetable_end_ns`` and the root 70 µs later."""
    clk = _Clock()
    tracer = Tracer(enabled=True)
    with tracer.span("xemem.attach", clk):
        clk.now = 10_000  # repro: noqa[REP006] reason=synthetic span-clock stub for capture fixtures; no simulation runs on it
        with tracer.span("kernel.pagetable.walk", clk):
            clk.now = pagetable_end_ns  # repro: noqa[REP006] reason=synthetic span-clock stub for capture fixtures; no simulation runs on it
        clk.now = pagetable_end_ns + 70_000  # repro: noqa[REP006] reason=synthetic span-clock stub for capture fixtures; no simulation runs on it
    with open(path, "w") as fp:
        tracer.to_jsonl(fp)


def test_identical_twins_diff_to_zero(tmp_path):
    a = str(tmp_path / "a.trace.json")
    b = str(tmp_path / "b.trace.json")
    _write_capture(a, 30_000)
    _write_capture(b, 30_000)
    result = diff.diff_files(a, b)
    assert result.total_delta_ns == 0
    assert result.attributed_delta_ns == 0
    assert result.coverage == 1.0
    assert "IDENTICAL" in diff.render_diff(result)


def test_synthetic_regression_attributed_to_cause(tmp_path):
    base = str(tmp_path / "base.trace.json")
    cur = str(tmp_path / "cur.trace.json")
    _write_capture(base, 30_000)   # pagetable 20 µs, root 100 µs
    _write_capture(cur, 60_000)    # pagetable 50 µs, root 130 µs
    result = diff.diff_files(base, cur)
    assert result.total_delta_ns == 30_000
    by = {r.key: r.delta_ns for r in result.by_subsystem}
    assert by["pagetable"] == 30_000
    assert by.get("xemem", 0) == 0   # root exclusive time is unchanged
    assert result.coverage == 1.0
    # the top span-name mover is the actual culprit
    assert result.by_name[0].key == "kernel.pagetable.walk"
    text = diff.render_diff(result)
    assert "pagetable" in text and "+30.0us" in text
    assert "attributed 100.0%" in text


def test_fig5_fast_vs_detailed_coverage(tmp_path):
    """Acceptance pair: Fig. 5 under fast vs detailed fidelity. The twin
    contract makes the delta exactly zero; either way the diff must
    attribute >= 95% of it."""
    from repro.bench import figures

    paths = []
    for name, ctx in (("fast", fidelity.configured("fast")),
                      ("detailed", fidelity.detailed())):
        path = str(tmp_path / f"fig5_{name}.trace.json")
        with ctx, obs.observing(trace=True, metrics=False) as octx:
            figures.fig5_throughput(reps=1)
            octx.tracer.to_chrome(path)
        paths.append(path)
    result = diff.diff_files(*paths)
    assert result.coverage >= 0.95
    assert result.total_delta_ns == 0


def test_cli_json_and_min_coverage(tmp_path, capsys):
    base = str(tmp_path / "base.trace.json")
    cur = str(tmp_path / "cur.trace.json")
    _write_capture(base, 30_000)
    _write_capture(cur, 60_000)
    assert diff.main([base, cur, "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["total_delta_ns"] == 30_000
    assert doc["coverage"] == 1.0
    # an unmeetable bar exercises the gate's failure path
    assert diff.main([base, cur, "--min-coverage", "1.5"]) == 5
    assert "FAIL: coverage" in capsys.readouterr().out


def test_cli_rejects_garbage(tmp_path):
    bad = tmp_path / "bad.trace.json"
    bad.write_text("not a trace")
    good = str(tmp_path / "good.trace.json")
    _write_capture(good, 30_000)
    try:
        diff.main([str(bad), good])
    except SystemExit as exc:
        assert "perf-diff" in str(exc)
    else:
        raise AssertionError("expected SystemExit on a garbage capture")


def test_bundle_captures_diff_including_counters(tmp_path):
    """Incident bundles load as captures: the trace tail plus the final
    counter values (so fault-count movement shows up in the diff)."""
    from repro.faults.chaos import run_chaos

    plan = ("drop=0.05,delay=0.05:20us,ipiloss=0.05,timeout=300us,"
            "retries=5,crash=kitten1@2ms")
    a = str(tmp_path / "a")
    b = str(tmp_path / "b")
    run_chaos(seed=3, plan_spec=plan, cokernels=2, ops=4, flightrec_dir=a)
    run_chaos(seed=4, plan_spec=plan, cokernels=2, ops=4, flightrec_dir=b)
    same = diff.diff_files(a, a)
    assert same.total_delta_ns == 0 and not same.counter_deltas
    assert same.baseline.counters   # bundle counters actually loaded
    across = diff.diff_files(a, b)
    assert diff.render_diff(across)  # renders without error either way
