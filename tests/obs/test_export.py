"""Tests for the deterministic exporters (repro.obs.export)."""

import json
import re

from repro.obs.analysis import SpanNode, TraceData, _link
from repro.obs.export import (
    dashboard_html,
    folded_stacks,
    prometheus_text,
    write_text,
)
from repro.obs.metrics import MetricsRegistry


def node(name, start, end, span_id=None, parent_id=None, **attrs):
    return SpanNode(span_id=span_id, parent_id=parent_id, name=name,
                    track="t", start_ns=start, end_ns=end, attrs=attrs)


def trace_of(*spans):
    spans = list(spans)
    return TraceData(spans=spans, roots=_link(spans))


# -- Prometheus text exposition ------------------------------------------------

def _full_registry():
    reg = MetricsRegistry()
    reg.counter("xemem.make.count").inc(3)
    reg.gauge("queue.depth").set(2.5)
    h = reg.histogram("xemem.attach.ns", bounds=(1000, 10_000))
    h.observe(500)
    h.observe(5000)
    h.observe(50_000)
    return reg


def test_prometheus_counter_gauge_histogram_series():
    text = prometheus_text(_full_registry())
    lines = text.splitlines()
    assert "# TYPE xemem_make_count counter" in lines
    assert "xemem_make_count 3" in lines
    assert "queue_depth 2.5" in lines
    # histogram buckets are cumulative, with the +Inf catch-all on top
    assert 'xemem_attach_ns_bucket{le="1000"} 1' in lines
    assert 'xemem_attach_ns_bucket{le="10000"} 2' in lines
    assert 'xemem_attach_ns_bucket{le="+Inf"} 3' in lines
    assert "xemem_attach_ns_count 3" in lines
    assert "xemem_attach_ns_sum 55500" in lines
    assert text.endswith("\n")


def test_prometheus_dot_paths_become_underscores():
    text = prometheus_text(_full_registry())
    # no raw dot-path survives name mangling (label values aside)
    for line in text.splitlines():
        metric_name = line.split("{")[0].split()[-1 if "#" in line else 0]
        assert "." not in metric_name


def test_prometheus_exclude_prefixes_filters_whole_families():
    reg = _full_registry()
    reg.counter("engine.events.count").inc(100)
    text = prometheus_text(reg, exclude_prefixes=("engine.", "queue."))
    assert "engine_events_count" not in text
    assert "queue_depth" not in text
    assert "xemem_make_count 3" in text


def test_prometheus_empty_registry_renders_empty():
    assert prometheus_text(MetricsRegistry()) == ""


# -- folded stacks -------------------------------------------------------------

def test_folded_stacks_values_are_exclusive_and_paths_merge():
    # two attach roots with identical child paths: the folded lines merge
    # and the values sum; child time never double-counts into the parent
    spans = [
        node("xemem.attach", 0, 1000, span_id=1),
        node("pisces.transfer", 100, 500, span_id=2, parent_id=1),
        node("xemem.attach", 2000, 2600, span_id=3),
        node("pisces.transfer", 2100, 2400, span_id=4, parent_id=3),
    ]
    text = folded_stacks(trace_of(*spans))
    assert text.splitlines() == [
        # attach exclusive: (1000-400) + (600-300) = 900
        "xemem.attach 900",
        # transfer exclusive merged: 400 + 300 = 700
        "xemem.attach;pisces.transfer 700",
    ]


def test_folded_stacks_skip_instants_and_zero_exclusive_frames():
    spans = [
        node("marker", 50, 50, span_id=1),                  # instant root
        node("wrapper", 0, 400, span_id=2),                  # fully covered
        node("inner", 0, 400, span_id=3, parent_id=2),
    ]
    text = folded_stacks(trace_of(*spans))
    # the instant contributes nothing; the wrapper has 0 exclusive ns so
    # only its child emits a line (under the wrapper's path)
    assert text.splitlines() == ["wrapper;inner 400"]


def test_folded_stacks_deterministic_sorted_output():
    spans = [
        node("b.op", 0, 100, span_id=1),
        node("a.op", 200, 300, span_id=2),
    ]
    text = folded_stacks(trace_of(*spans))
    assert text == "a.op 100\nb.op 100\n"
    assert folded_stacks(trace_of(*spans)) == text


def test_folded_stacks_empty_trace():
    assert folded_stacks(trace_of()) == ""


# -- HTML dashboard ------------------------------------------------------------

def _doc():
    return {
        "meta": {"seed": 0, "sessions": 2},
        "timeseries": {"window_ns": 100, "dropped_windows": 0, "windows": []},
        "chart_metric": "xemem.attach.ns",
        "slo": {"specs": [], "ok": True, "windows_evaluated": {},
                "violations": []},
        "journeys": [],
    }


def test_dashboard_embeds_the_doc_as_parseable_json():
    html = dashboard_html(_doc(), title="t")
    m = re.search(
        r'<script id="data" type="application/json">(.*?)</script>',
        html, re.S,
    )
    assert m is not None
    payload = json.loads(m.group(1).replace("<\\/", "</"))
    assert payload == _doc()
    assert html.count("<title>t</title>") == 1


def test_dashboard_escapes_script_closers_inside_the_payload():
    doc = _doc()
    doc["meta"]["note"] = "</script><script>alert(1)</script>"
    html = dashboard_html(doc)
    m = re.search(
        r'<script id="data" type="application/json">(.*?)</script>',
        html, re.S,
    )
    # the raw closer never appears inside the data block...
    assert "</script>" not in m.group(1)
    # ...yet unescaping recovers the exact original value
    assert json.loads(m.group(1).replace("<\\/", "</")) == doc


def test_dashboard_is_self_contained_and_deterministic():
    html = dashboard_html(_doc())
    assert dashboard_html(_doc()) == html
    assert "http://" not in html and "https://" not in html  # no CDNs
    assert "<svg" not in html  # chart is built client-side from the JSON


# -- write_text ----------------------------------------------------------------

def test_write_text_accepts_path_and_file_object(tmp_path):
    p = tmp_path / "out.txt"
    write_text(str(p), "hello\n")
    assert p.read_text() == "hello\n"
    import io
    buf = io.StringIO()
    write_text(buf, "again")
    assert buf.getvalue() == "again"
