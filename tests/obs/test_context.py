"""The ambient observability context: install/restore, null paths."""

from repro import obs
from repro.obs.metrics import NULL_METRIC
from repro.obs.tracer import NULL_SPAN
from repro.sim import Engine


def test_default_context_is_disabled():
    ctx = obs.get()
    assert not ctx.enabled
    assert ctx.span("x", None) is NULL_SPAN
    assert ctx.counter("c") is NULL_METRIC
    assert ctx.snapshot() == {}


def test_observing_installs_and_restores():
    before = obs.get()
    with obs.observing(trace=True, metrics=True) as ctx:
        assert obs.get() is ctx
        assert ctx.enabled
    assert obs.get() is before


def test_observing_restores_on_exception():
    before = obs.get()
    try:
        with obs.observing():
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert obs.get() is before


def test_install_returns_previous():
    ctx = obs.ObsContext()
    prev = obs.install(ctx)
    try:
        assert obs.get() is ctx
    finally:
        obs.install(prev)


def test_engine_picks_up_ambient_observer():
    with obs.observing(trace=False, metrics=False, engine=True) as ctx:
        eng = Engine()
        assert eng.obs is ctx.engine_obs
    assert Engine().obs is None


def test_context_usable_after_exit_for_export():
    with obs.observing(trace=True, metrics=True, engine=True) as ctx:
        eng = Engine()

        def proc():
            with ctx.span("work", eng):
                yield eng.sleep(7)
            ctx.counter("done").inc()

        eng.run_process(proc())
    snap = ctx.snapshot()
    assert snap["done"] == 1
    assert snap["engine.events.executed"] > 0
    assert [s.name for s in ctx.tracer.spans] == ["work"]


def test_max_trace_events_threads_through():
    with obs.observing(trace=True, max_trace_events=2) as ctx:
        for i in range(5):
            ctx.tracer.instant(f"e{i}", i)
    assert len(ctx.tracer) == 2
    assert ctx.tracer.dropped == 3
