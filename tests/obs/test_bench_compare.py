"""Tests for the BENCH_*.json regression comparator."""

import json

import pytest

from repro.obs import bench


# -- direction inference -------------------------------------------------------

@pytest.mark.parametrize("key,direction", [
    ("slowpath_seconds", "lower"),
    ("attach_latency_ns", "lower"),
    ("obs_overhead_pct", "lower"),
    ("speedup", "higher"),
    ("attach_gib_s", "higher"),
    ("transfer_throughput", "higher"),
    ("npages", None),
    ("cycles", None),
    ("benchmark", None),
])
def test_direction_of(key, direction):
    assert bench.direction_of(key) == direction


# -- comparison ----------------------------------------------------------------

def test_within_tolerance_passes():
    cmp = bench.compare(
        {"wall_seconds": 1.0, "speedup": 2.0, "npages": 512},
        {"wall_seconds": 1.10, "speedup": 1.90, "npages": 512},
        tolerance=0.15,
    )
    assert cmp.ok
    assert not cmp.regressions
    (speedup, wall) = sorted(cmp.deltas, key=lambda d: d.key)
    assert speedup.change_pct == pytest.approx(-5.0)
    assert wall.change_pct == pytest.approx(10.0)


def test_lower_better_regression_caught():
    cmp = bench.compare({"wall_seconds": 1.0}, {"wall_seconds": 1.2},
                        tolerance=0.15)
    assert not cmp.ok
    (d,) = cmp.regressions
    assert d.key == "wall_seconds" and d.direction == "lower"


def test_higher_better_regression_caught():
    cmp = bench.compare({"speedup": 2.0}, {"speedup": 1.5}, tolerance=0.15)
    assert not cmp.ok
    assert cmp.regressions[0].direction == "higher"


def test_improvements_never_regress():
    cmp = bench.compare(
        {"wall_seconds": 1.0, "speedup": 2.0},
        {"wall_seconds": 0.2, "speedup": 9.0},
    )
    assert cmp.ok


def test_identity_keys_must_match_exactly():
    cmp = bench.compare({"npages": 512, "wall_seconds": 1.0},
                        {"npages": 1024, "wall_seconds": 1.0})
    assert not cmp.ok
    assert cmp.mismatched == [("npages", 512, 1024)]


def test_missing_keys_fail():
    cmp = bench.compare({"wall_seconds": 1.0, "speedup": 2.0},
                        {"wall_seconds": 1.0})
    assert not cmp.ok
    assert cmp.missing == ["speedup"]


def test_extra_current_keys_are_ignored():
    cmp = bench.compare({"wall_seconds": 1.0},
                        {"wall_seconds": 1.0, "new_metric_seconds": 9.0})
    assert cmp.ok


def test_per_key_tolerance_override():
    base, cur = {"wall_seconds": 1.0}, {"wall_seconds": 1.3}
    assert not bench.compare(base, cur, tolerance=0.15).ok
    assert bench.compare(base, cur, tolerance=0.15,
                         tolerances={"wall_seconds": 0.5}).ok


def test_zero_baseline_edge_cases():
    cmp = bench.compare({"noise_overhead_ns": 0}, {"noise_overhead_ns": 0})
    assert cmp.ok and cmp.deltas[0].ratio == 1.0
    cmp = bench.compare({"noise_overhead_ns": 0}, {"noise_overhead_ns": 5})
    assert not cmp.ok


def test_negative_tolerance_rejected():
    with pytest.raises(ValueError):
        bench.compare({}, {}, tolerance=-0.1)


def test_bools_are_identity_not_metrics():
    cmp = bench.compare({"fastpath_rate": True}, {"fastpath_rate": False})
    assert cmp.mismatched and not cmp.deltas


# -- rendering and CLI ---------------------------------------------------------

def test_render_verdicts():
    good = bench.compare({"wall_seconds": 1.0}, {"wall_seconds": 1.0})
    assert "PASS" in bench.render(good, 0.15)
    bad = bench.compare({"wall_seconds": 1.0, "npages": 4},
                        {"wall_seconds": 2.0, "npages": 8})
    text = bench.render(bad, 0.15)
    assert "REGRESSED" in text
    assert "MISMATCH: npages" in text
    assert "FAIL: 1 regression(s), 1 mismatch(es)" in text


def _write(tmp_path, name, payload):
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return str(path)


def test_cli_exit_codes(tmp_path, capsys):
    base = _write(tmp_path, "base.json", {"wall_seconds": 1.0})
    same = _write(tmp_path, "same.json", {"wall_seconds": 1.05})
    slow = _write(tmp_path, "slow.json", {"wall_seconds": 2.0})
    assert bench.main([base, same]) == 0
    assert "PASS" in capsys.readouterr().out
    assert bench.main([base, slow]) == 1
    assert "FAIL" in capsys.readouterr().out
    assert bench.main([base, slow, "--tolerance", "1.5"]) == 0


def test_cli_bad_inputs(tmp_path):
    base = _write(tmp_path, "base.json", {"wall_seconds": 1.0})
    with pytest.raises(SystemExit, match="cannot read"):
        bench.main([base, str(tmp_path / "absent.json")])
    garbled = tmp_path / "bad.json"
    garbled.write_text("{not json")
    with pytest.raises(SystemExit, match="invalid JSON"):
        bench.main([base, str(garbled)])
