"""Tests for request-journey reconstruction (repro.obs.analysis.journeys)."""

from repro.obs import analysis
from repro.obs.analysis import SpanNode


def node(name, start, end, span_id=None, parent_id=None, **attrs):
    return SpanNode(span_id=span_id, parent_id=parent_id, name=name,
                    track="t", start_ns=start, end_ns=end, attrs=attrs)


def trace_of(*spans):
    spans = list(spans)
    return analysis.TraceData(spans=spans, roots=analysis._link(spans))


def test_untagged_descendants_inherit_the_nearest_tagged_ancestor():
    spans = [
        node("xemem.attach", 0, 1000, span_id=1, req_id="linux:1"),
        node("pisces.transfer", 100, 500, span_id=2, parent_id=1),
        node("kernel.pagetable.walk", 500, 800, span_id=3, parent_id=2),
    ]
    (j,) = analysis.journeys(trace_of(*spans))
    assert j.req_id == "linux:1"
    assert j.op == "xemem.attach"
    assert j.span_count == 3
    assert j.start_ns == 0 and j.end_ns == 1000


def test_spans_with_no_tag_anywhere_belong_to_no_journey():
    spans = [
        node("xemem.attach", 0, 1000, span_id=1, req_id="linux:1"),
        node("noise.detour", 2000, 3000, span_id=2),  # untagged root
    ]
    js = analysis.journeys(trace_of(*spans))
    assert [j.req_id for j in js] == ["linux:1"]
    assert sum(j.span_count for j in js) == 1


def test_a_child_retag_starts_a_new_journey_below_the_parent():
    # a server-side span serving a different request inside a client op
    spans = [
        node("xemem.attach", 0, 1000, span_id=1, req_id="linux:1"),
        node("xemem.owner.serve", 200, 600, span_id=2, parent_id=1,
             req_id="linux:2"),
    ]
    js = analysis.journeys(trace_of(*spans))
    by_id = {j.req_id: j for j in js}
    assert set(by_id) == {"linux:1", "linux:2"}
    assert by_id["linux:1"].span_count == 1
    assert by_id["linux:2"].op == "xemem.owner.serve"


def test_journeys_cross_process_spans_share_one_id():
    # same req_id tagged on two *root* spans in different tracks/processes
    # (the cross-enclave case: no parent link ties them together)
    a = node("xemem.attach", 0, 1000, span_id=1, req_id="linux:7")
    b = node("xemem.owner.serve", 300, 700, span_id=2, req_id="linux:7")
    b.track = "kitten0"
    (j,) = analysis.journeys(trace_of(a, b))
    assert j.span_count == 2
    assert j.op == "xemem.attach"  # earliest tagged span names the op
    # both parentless members are phase roots, in time order
    assert [name for name, _ in j.critical_path] == [
        "xemem.attach", "xemem.owner.serve",
    ]


def test_by_subsystem_sums_exclusive_time_without_double_counting():
    spans = [
        node("xemem.attach", 0, 1000, span_id=1, req_id="r"),
        node("pisces.transfer", 100, 500, span_id=2, parent_id=1,
             marshal_ns=300),
    ]
    (j,) = analysis.journeys(trace_of(*spans))
    # attach keeps only its exclusive 600ns; the transfer's 400ns splits
    # marshal/ipi -- totals add up to wall time, nothing counted twice
    assert j.by_subsystem == {"xemem": 600, "channel": 300, "ipi": 100}
    assert sum(j.by_subsystem.values()) == 1000


def test_critical_path_lists_only_phase_roots():
    spans = [
        node("xemem.attach", 0, 1000, span_id=1, req_id="r"),
        node("pisces.transfer", 100, 500, span_id=2, parent_id=1),
    ]
    (j,) = analysis.journeys(trace_of(*spans))
    # the transfer's parent is inside the journey, so it is not a phase root
    assert j.critical_path == [("xemem.attach", 1000)]


def test_journeys_sorted_by_start_then_req_id():
    spans = [
        node("xemem.get", 500, 900, span_id=1, req_id="b"),
        node("xemem.attach", 0, 400, span_id=2, req_id="c"),
        node("xemem.make", 0, 300, span_id=3, req_id="a"),
    ]
    js = analysis.journeys(trace_of(*spans))
    assert [j.req_id for j in js] == ["a", "c", "b"]


def test_journey_doc_and_render():
    spans = [
        node("xemem.attach", 0, 1000, span_id=1, req_id="linux:1"),
        node("pisces.transfer", 100, 500, span_id=2, parent_id=1,
             marshal_ns=400),
    ]
    (j,) = analysis.journeys(trace_of(*spans))
    doc = j.to_doc()
    assert doc["req_id"] == "linux:1"
    assert doc["duration_ns"] == 1000
    # by_subsystem renders biggest-first for the dashboard
    assert list(doc["by_subsystem"]) == ["xemem", "channel"]
    text = analysis.render_journeys([j])
    assert "linux:1" in text and "xemem.attach" in text
