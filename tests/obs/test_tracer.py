"""Unit tests for the span tracer: nesting, ring cap, exports."""

import io
import json
import pathlib

import pytest

from repro.obs import RingBuffer, Tracer
from repro.obs.tracer import NULL_SPAN
from repro.sim import Engine

GOLDEN = pathlib.Path(__file__).parent / "data" / "golden_trace.json"


def build_reference_trace(tracer: Tracer) -> None:
    """A small fixed scenario: two tracks, nesting, attrs, an instant."""
    eng = Engine()

    def outer():
        with tracer.span("xemem.attach", eng, track="kitten0", npages=4):
            yield eng.sleep(100)
            with tracer.span("pisces.transfer", eng,
                             track="linux<->kitten0", kind="attach"):
                yield eng.sleep(250)
            yield eng.sleep(50)
        tracer.instant("xemem.detach", eng.now, track="kitten0")

    eng.run_process(outer())


# -- recording ----------------------------------------------------------------

def test_span_records_virtual_duration():
    eng = Engine()
    tr = Tracer()

    def proc():
        with tr.span("work", eng):
            yield eng.sleep(500)

    eng.run_process(proc())
    (span,) = tr.spans
    assert span.name == "work"
    assert span.start_ns == 0
    assert span.end_ns == 500
    assert span.duration_ns == 500


def test_nested_spans_get_parent_ids():
    tr = Tracer()
    build_reference_trace(tr)
    inner = tr.of_name("pisces.transfer")[0]
    outer = tr.of_name("xemem.attach")[0]
    instant = tr.of_name("xemem.detach")[0]
    assert outer.parent_id is None
    assert inner.parent_id == outer.span_id
    assert instant.parent_id is None  # outer span closed before the instant
    # completion order: inner closes before outer
    assert tr.spans[0] is inner
    assert tr.spans[1] is outer


def test_span_set_updates_attrs():
    eng = Engine()
    tr = Tracer()
    with tr.span("s", eng, a=1) as sp:
        sp.set(b=2, a=3)
    assert tr.spans[0].attrs == {"a": 3, "b": 2}


def test_tracks_in_first_appearance_order():
    tr = Tracer()
    build_reference_trace(tr)
    # the nested span completes (and is recorded) first, so its track leads
    assert tr.tracks() == ["linux<->kitten0", "kitten0"]


def test_disabled_tracer_returns_shared_null_span():
    eng = Engine()
    tr = Tracer(enabled=False)
    assert tr.span("x", eng) is NULL_SPAN
    with tr.span("x", eng) as sp:
        sp.set(ignored=True)
    tr.instant("y", 0)
    assert len(tr) == 0


def test_clear_forgets_spans():
    tr = Tracer()
    build_reference_trace(tr)
    tr.clear()
    assert len(tr) == 0
    assert tr.tracks() == []


# -- ring cap -----------------------------------------------------------------

def test_ring_buffer_caps_and_counts_drops():
    rb = RingBuffer(max_events=3)
    for i in range(10):
        rb.append(i)
    assert len(rb) == 3
    assert list(rb) == [7, 8, 9]
    assert rb.dropped == 7
    rb.clear()
    assert len(rb) == 0
    assert rb.dropped == 0


def test_ring_buffer_unbounded_by_default():
    rb = RingBuffer()
    for i in range(1000):
        rb.append(i)
    assert len(rb) == 1000
    assert rb.dropped == 0


def test_ring_buffer_rejects_nonpositive_cap():
    with pytest.raises(ValueError):
        RingBuffer(max_events=0)


def test_tracer_max_events_drops_oldest():
    tr = Tracer(max_events=2)
    for i in range(5):
        tr.instant(f"e{i}", i)
    assert [s.name for s in tr.spans] == ["e3", "e4"]
    assert tr.dropped == 3


# -- exports ------------------------------------------------------------------

def test_chrome_export_matches_golden_file():
    tr = Tracer()
    build_reference_trace(tr)
    buf = io.StringIO()
    tr.to_chrome(buf)
    assert buf.getvalue() == GOLDEN.read_text().rstrip("\n")


def test_chrome_export_structure():
    tr = Tracer()
    build_reference_trace(tr)
    buf = io.StringIO()
    tr.to_chrome(buf)
    doc = json.loads(buf.getvalue())
    events = doc["traceEvents"]
    xs = [e for e in events if e["ph"] == "X"]
    metas = [e for e in events if e["ph"] == "M"]
    assert doc["otherData"]["dropped_spans"] == 0
    # one process_name + one thread_name per track
    assert [m["name"] for m in metas] == [
        "process_name", "thread_name", "thread_name",
    ]
    attach = next(e for e in xs if e["name"] == "xemem.attach")
    assert attach["cat"] == "xemem"
    assert attach["ts"] == 0
    assert attach["dur"] == pytest.approx(0.4)  # 400 ns in microseconds
    # span identity rides in args so analysis can rebuild the tree
    assert attach["args"] == {"npages": 4, "span_id": attach["args"]["span_id"]}
    transfer = next(e for e in xs if e["name"] == "pisces.transfer")
    assert transfer["args"]["parent_id"] == attach["args"]["span_id"]


def test_jsonl_export_round_trips():
    tr = Tracer()
    build_reference_trace(tr)
    buf = io.StringIO()
    tr.to_jsonl(buf)
    lines = [json.loads(line) for line in buf.getvalue().splitlines()]
    assert len(lines) == len(tr)
    by_name = {rec["name"]: rec for rec in lines}
    assert by_name["pisces.transfer"]["parent"] == by_name["xemem.attach"]["id"]
    assert by_name["xemem.attach"]["end_ns"] == 400
    assert by_name["xemem.detach"]["start_ns"] == by_name["xemem.detach"]["end_ns"]


def test_non_json_attrs_fall_back_to_repr():
    eng = Engine()
    tr = Tracer()
    with tr.span("s", eng, obj=object(), n=1):
        pass
    buf = io.StringIO()
    tr.to_jsonl(buf)
    rec = json.loads(buf.getvalue())
    assert rec["attrs"]["n"] == 1
    assert rec["attrs"]["obj"].startswith("<object object")


def test_interleaved_processes_do_not_cross_parent():
    """Regression: parent attribution is per-process. Two concurrent
    processes whose spans interleave in time must each see only their
    own open spans as parents -- a single global stack used to make the
    later span a child of whichever span happened to be open, and an
    out-of-order close could leak ids onto the stack forever."""
    eng = Engine()
    tr = Tracer()

    def worker(name, delay):
        yield eng.sleep(delay)
        with tr.span(f"{name}.op", eng):
            yield eng.sleep(100)
            with tr.span(f"{name}.inner", eng):
                yield eng.sleep(100)

    def scenario():
        a = eng.spawn(worker("a", 0))
        b = eng.spawn(worker("b", 50))  # opens while a.op is still open
        yield eng.all_of([a, b])

    eng.run_process(scenario())
    by_name = {s.name: s for s in tr.spans}
    assert by_name["a.op"].parent_id is None
    assert by_name["b.op"].parent_id is None  # not adopted by a.op
    assert by_name["a.inner"].parent_id == by_name["a.op"].span_id
    assert by_name["b.inner"].parent_id == by_name["b.op"].span_id


def test_out_of_order_close_does_not_leak_stack_entries():
    eng = Engine()
    tr = Tracer()

    def proc():
        # close the outer handle before the inner one: the tracer must
        # still unwind both, leaving nothing behind to parent on
        outer = tr.span("outer", eng)
        inner = tr.span("inner", eng)
        outer.__enter__()
        inner.__enter__()
        yield eng.sleep(10)
        outer.__exit__(None, None, None)
        inner.__exit__(None, None, None)
        with tr.span("later", eng):
            yield eng.sleep(10)

    eng.run_process(proc())
    later = tr.of_name("later")[0]
    assert later.parent_id is None
    assert tr._stacks == {}  # every stack fully unwound
