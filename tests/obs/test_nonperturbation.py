"""Observability must never change what the simulation computes.

The same scenario runs with observability fully off and fully on (trace
+ metrics + engine hooks + auditor); the virtual end time and every
simulation-side statistic must be identical, under both the fast and the
slow engine/kernel paths. This is the standing guarantee that lets the
paper's figures be generated with tracing enabled.
"""

import pytest

from repro import obs
from repro.bench.configs import build_cokernel_system
from repro.hw.costs import PAGE_4K
from repro.sim import fastpath
from repro.xemem import XpmemApi


def _scenario(with_audit):
    """Two attach/touch/detach cycles across the channel; returns the
    numbers observability must not move."""
    rig = build_cokernel_system(with_audit=with_audit)
    eng = rig.engine
    kitten = rig.cokernels[0].kernel
    linux = rig.linux.kernel
    kp = kitten.create_process("sim")
    lp = linux.create_process("ana", core_id=2)
    heap = kitten.heap_region(kp)
    npages = 256

    def run():
        api_k, api_l = XpmemApi(kp), XpmemApi(lp)
        segid = yield from api_k.xpmem_make(heap.start, npages * PAGE_4K)
        apid = yield from api_l.xpmem_get(segid)
        for _ in range(2):
            att = yield from api_l.xpmem_attach(apid)
            yield from linux.touch_pages(lp, att.vaddr, npages, write=True)
            yield from api_l.xpmem_detach(att)
        yield from api_l.xpmem_release(apid)

    eng.run_process(run())
    return {
        "end_ns": eng.now,
        "linux_stats": dict(rig.linux.module.stats),
        "kitten_stats": dict(rig.cokernels[0].module.stats),
        "transfers": sum(
            ch.transfers_completed for ch in rig.system.channels
            if hasattr(ch, "transfers_completed")
        ),
    }


def _run_dark():
    return _scenario(with_audit=False)


def _run_observed():
    with obs.observing(trace=True, metrics=True, engine=True):
        return _scenario(with_audit=True)


@pytest.mark.parametrize("paths", ["fast", "slow"])
def test_observability_is_invisible_to_the_simulation(paths):
    ctx = fastpath.enabled() if paths == "fast" else fastpath.disabled()
    with ctx:
        dark = _run_dark()
        observed = _run_observed()
    assert observed == dark


def test_fast_and_slow_agree_while_audited():
    """The auditor doubles as a fastpath differential check: identical
    end state with every fast path on vs off, audits enabled."""
    with obs.observing(trace=True):
        with fastpath.disabled():
            slow = _scenario(with_audit=True)
        with fastpath.enabled():
            fast = _scenario(with_audit=True)
    assert fast == slow
