"""The flight recorder and its incident bundles.

The black box's contract has three legs, all tested here:

1. **Determinism** — same seed + same fault plan ⇒ byte-identical
   bundles across reruns *and* across the simulation twins
   (``REPRO_FASTPATH=0``, ``REPRO_FIDELITY=detailed``), because the
   bundle excludes the two metric families and env keys that
   legitimately differ between modes.
2. **Diagnosis** — ``python -m repro diagnose`` renders a bundle as a
   causal timeline naming the trigger and its faulting virtual-time
   window, and fails loudly on a tampered bundle (manifest hashes).
3. **Invisibility** — arming the recorder changes no figure output and
   surfaces ring-cap drops as metrics (the ``dropped``-gauge satellite).
"""

import json
import os
import pathlib
import subprocess
import sys

from repro import obs
from repro.faults.chaos import run_chaos
from repro.obs import flightrec

REPO_ROOT = str(pathlib.Path(__file__).resolve().parents[2])

#: A plan that deterministically crashes kitten1 mid-run.
PLAN = ("drop=0.05,delay=0.05:20us,ipiloss=0.05,timeout=300us,retries=5,"
        "crash=kitten1@2ms")


def _emit(tmp_path, name, seed=3):
    out = str(tmp_path / name)
    report = run_chaos(seed=seed, plan_spec=PLAN, cokernels=2, ops=4,
                       flightrec_dir=out)
    return report, out


def _bundle_bytes(path):
    return {
        name: (pathlib.Path(path) / name).read_bytes()
        for name in flightrec.BUNDLE_FILES + (flightrec.MANIFEST,)
    }


def test_crash_emits_complete_bundle(tmp_path):
    report, out = _emit(tmp_path, "a")
    assert report.crashes == 1
    assert report.bundle_path == out
    bundle = flightrec.load_bundle(out)
    assert all(v == "ok" for v in bundle["integrity"].values())
    assert bundle["manifest"]["schema"] == flightrec.SCHEMA_VERSION
    assert bundle["manifest"]["trigger"]["kind"] == "enclave.crash"
    assert bundle["manifest"]["trigger"]["detail"]["enclave"] == "kitten1"
    # the tail holds real spans and the recorder's bookkeeping line
    assert bundle["spans"]
    assert bundle["trace_meta"]["recorded"] >= len(bundle["spans"])


def test_bundle_byte_identical_across_reruns(tmp_path):
    _, a = _emit(tmp_path, "a")
    _, b = _emit(tmp_path, "b")
    assert _bundle_bytes(a) == _bundle_bytes(b)


def test_bundle_byte_identical_across_twins(tmp_path):
    """Same (seed, plan) under ``REPRO_FASTPATH=0`` and
    ``REPRO_FIDELITY=detailed`` freezes the exact same bundle bytes."""
    script = (
        "import sys\n"
        "from repro.faults.chaos import run_chaos\n"
        f"run_chaos(seed=3, plan_spec={PLAN!r}, cokernels=2, ops=4,\n"
        "          flightrec_dir=sys.argv[1])\n"
    )
    _, reference = _emit(tmp_path, "ref")
    for name, extra_env in (("slow", {"REPRO_FASTPATH": "0"}),
                            ("detailed", {"REPRO_FIDELITY": "detailed"})):
        out = str(tmp_path / name)
        env = dict(os.environ, PYTHONPATH="src", **extra_env)
        proc = subprocess.run(
            [sys.executable, "-c", script, out],
            capture_output=True, text=True, env=env, cwd=REPO_ROOT,
            timeout=240,
        )
        assert proc.returncode == 0, proc.stderr
        assert _bundle_bytes(out) == _bundle_bytes(reference), (
            f"bundle bytes diverged under {extra_env}"
        )


def test_diagnose_renders_causal_timeline(tmp_path, capsys):
    _, out = _emit(tmp_path, "a")
    assert flightrec.main([out]) == 0
    text = capsys.readouterr().out
    assert "trigger: enclave.crash at t=2000000 ns" in text
    assert "enclave=kitten1" in text
    # the faulting window ends at the trigger's virtual time
    assert "faulting window: [1500000 .. 2000000] ns" in text
    assert "timeline (virtual clock):" in text
    # injector breadcrumbs and the engine's final state both surface
    assert "fault." in text
    assert "engine:" in text


def test_diagnose_json_mode(tmp_path, capsys):
    _, out = _emit(tmp_path, "a")
    assert flightrec.main([out, "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["manifest"]["trigger"]["kind"] == "enclave.crash"
    assert all(v == "ok" for v in doc["integrity"].values())


def test_diagnose_fails_on_tampered_bundle(tmp_path, capsys):
    _, out = _emit(tmp_path, "a")
    metrics = pathlib.Path(out) / "metrics.json"
    metrics.write_text(metrics.read_text() + "\n")
    assert flightrec.main([out]) == 1
    text = capsys.readouterr().out
    assert "MISMATCH" in text


def test_is_bundle_rejects_plain_dirs(tmp_path):
    assert not flightrec.is_bundle(str(tmp_path))
    assert not flightrec.is_bundle(str(tmp_path / "missing"))


def test_armed_recorder_is_invisible_to_figures():
    """The acceptance bar: arming the black box (ring-capped tail +
    metrics, no engine hook) must not change a single figure number."""
    from repro.bench import figures

    dark = figures.fig5_throughput(reps=1)
    with obs.observing(trace=True, metrics=True, max_trace_events=512,
                       flightrec=True):
        armed = figures.fig5_throughput(reps=1)
    assert armed == dark


def test_trace_recorder_dropped_gauge():
    """Ring-cap evictions surface as a gauge and in the Prometheus
    exposition (the satellite), and capless runs stay gauge-free."""
    from repro.obs.export import prometheus_text
    from repro.sim.record import TraceRecorder

    with obs.observing(trace=False, metrics=True) as ctx:
        rec = TraceRecorder(max_events=4)
        for i in range(10):
            rec.record(i * 10, "tick", n=i)
    assert rec.dropped == 6
    snap = ctx.snapshot()
    assert snap["trace.recorder.dropped"] == 6.0
    assert "trace_recorder_dropped 6" in prometheus_text(ctx.metrics)

    with obs.observing(trace=False, metrics=True) as ctx:
        rec = TraceRecorder()
        for i in range(10):
            rec.record(i * 10, "tick", n=i)
    assert "trace.recorder.dropped" not in ctx.snapshot()


def test_span_tracer_dropped_gauge():
    """The span tracer's ring-cap drops fold into the snapshot too."""
    with obs.observing(trace=True, metrics=True, max_trace_events=2) as ctx:
        for i in range(5):
            ctx.tracer.instant(f"e{i}", i * 10)
    assert ctx.tracer.dropped == 3
    assert ctx.snapshot()["obs.spans.dropped"] == 3.0
