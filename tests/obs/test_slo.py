"""Tests for the declarative SLO engine (repro.obs.slo)."""

import pytest

from repro.obs.analysis import Journey, SpanNode, TraceData, _link
from repro.obs.slo import SloSpec, evaluate
from repro.obs.timeseries import HistWindow, WindowSnapshot

BOUNDS = (10_000, 100_000)


# -- spec parsing --------------------------------------------------------------

def test_parse_full_grammar_with_units_and_over():
    spec = SloSpec.parse("xemem.attach.ns.p99 < 25us over 1ms")
    assert spec.metric == "xemem.attach.ns"
    assert spec.agg == "p99"
    assert spec.op == "<"
    assert spec.threshold == 25_000.0
    assert spec.over_ns == 1_000_000


def test_parse_bare_threshold_and_no_over():
    spec = SloSpec.parse("pisces.channel.msgs.rate > 1000")
    assert spec.metric == "pisces.channel.msgs"
    assert spec.agg == "rate"
    assert spec.threshold == 1000.0
    assert spec.over_ns is None


@pytest.mark.parametrize("agg", ["p50", "p95", "p99", "mean", "count",
                                 "rate", "value"])
def test_parse_accepts_every_aggregator(agg):
    assert SloSpec.parse(f"m.x.{agg} <= 5").agg == agg


@pytest.mark.parametrize("text", [
    "no-aggregator < 5",            # last component must be an agg
    "m.p99 less-than 5",            # bad operator
    "m.p99 < ",                     # missing threshold
    "m.p99 < 5 over",               # dangling over
    "m.p99 < 5 over ten ms",        # non-numeric duration
    "m.p99 < 5parsecs",             # unknown unit
])
def test_parse_rejects_malformed_specs(text):
    with pytest.raises(ValueError):
        SloSpec.parse(text)


def test_parse_normalizes_every_unit_to_ns():
    assert SloSpec.parse("m.p99 < 3ns").threshold == 3.0
    assert SloSpec.parse("m.p99 < 3us").threshold == 3_000.0
    assert SloSpec.parse("m.p99 < 3ms").threshold == 3_000_000.0
    assert SloSpec.parse("m.p99 < 3s").threshold == 3_000_000_000.0


# -- window fixtures -----------------------------------------------------------

class FakeRecorder:
    def __init__(self, windows, window_ns=100):
        self.windows = windows
        self.window_ns = window_ns


def hist_window(count, deltas, total):
    return HistWindow(count=count, total=total, bounds=BOUNDS,
                      bucket_deltas=tuple(deltas))


def window(i, counters=None, hists=None, gauges=None, window_ns=100):
    return WindowSnapshot(
        index=i, start_ns=i * window_ns, end_ns=(i + 1) * window_ns,
        counters=counters or {}, gauges=gauges or {},
        histograms=hists or {},
    )


# -- evaluation ----------------------------------------------------------------

def test_per_window_quantile_flags_only_the_bad_window():
    # window 0: all fast (first bucket); window 1: all slow (overflow)
    windows = [
        window(0, hists={"lat.ns": hist_window(10, (10, 0, 0), 50_000)}),
        window(1, hists={"lat.ns": hist_window(10, (0, 0, 10), 2_000_000)}),
    ]
    report = evaluate([SloSpec.parse("lat.ns.p99 < 50us")],
                      FakeRecorder(windows))
    assert report.windows_evaluated["lat.ns.p99 < 50us"] == 2
    (v,) = report.violations
    assert v.window == (100, 200)
    assert v.observed == pytest.approx(100_000.0)  # overflow clamps to bound
    assert not report.ok


def test_quantile_skips_empty_windows_but_count_judges_them():
    windows = [window(0), window(1)]  # nothing happened at all
    quiet = evaluate([SloSpec.parse("lat.ns.p99 < 50us")],
                     FakeRecorder(windows))
    assert quiet.windows_evaluated["lat.ns.p99 < 50us"] == 0
    assert quiet.ok  # no data is not a violation for quantiles
    # ...but an absence-based objective treats no-data as zero and judges
    floor = evaluate([SloSpec.parse("ops.count >= 1")], FakeRecorder(windows))
    assert floor.windows_evaluated["ops.count >= 1"] == 2
    assert len(floor.violations) == 2


def test_counter_count_and_rate_aggregators():
    windows = [
        window(0, counters={"ops": 5}),
        window(1, counters={"ops": 15}),
    ]
    rec = FakeRecorder(windows)
    count = evaluate([SloSpec.parse("ops.count <= 10")], rec)
    (v,) = count.violations
    assert v.observed == 15.0 and v.window == (100, 200)
    # rate is delta per simulated second: 5/100ns = 5e7/s, 15/100ns = 1.5e8/s
    rate = evaluate([SloSpec.parse("ops.rate < 100000000")], rec)
    assert [x.observed for x in rate.violations] == [pytest.approx(1.5e8)]


def test_gauge_value_uses_level_at_window_close():
    windows = [window(0, gauges={"depth": 3.0}),
               window(1, gauges={"depth": 9.0})]
    report = evaluate([SloSpec.parse("depth.value < 5")],
                      FakeRecorder(windows))
    (v,) = report.violations
    assert v.observed == 9.0 and v.window == (100, 200)


def test_burn_window_merges_delta_buckets_before_the_quantile():
    # 50 fast samples in window 0, 50 slow in window 1: the burn-window
    # p99 must be the p99 of all 100 samples (100us, set by the slow
    # half), not an average of the two per-window p99s (~55us).
    w0 = window(0, hists={"lat.ns": hist_window(50, (50, 0, 0), 250_000)})
    w1 = window(1, hists={"lat.ns": hist_window(50, (0, 0, 50), 10_000_000)})
    rec = FakeRecorder([w0, w1], window_ns=100)
    report = evaluate([SloSpec.parse("lat.ns.p99 < 60us over 200ns")], rec)
    assert report.windows_evaluated["lat.ns.p99 < 60us over 200ns"] == 1
    (v,) = report.violations
    assert v.observed == pytest.approx(100_000.0)
    assert v.window == (0, 200)


def test_burn_window_group_width_is_ceiling_of_duration():
    windows = [window(i, counters={"ops": 1}) for i in range(5)]
    rec = FakeRecorder(windows, window_ns=100)
    report = evaluate([SloSpec.parse("ops.count >= 3 over 250ns")], rec)
    # ceil(250/100) = 3 windows per burn group -> groups of 3 and 2
    assert report.windows_evaluated["ops.count >= 3 over 250ns"] == 2
    (v,) = report.violations  # the trailing 2-window group has only 2 ops
    assert v.window == (300, 500)
    assert v.observed == pytest.approx(2.0)


def test_violation_carries_matching_journeys_biggest_first():
    windows = [
        window(0, hists={"xemem.attach.ns": hist_window(
            5, (0, 0, 5), 1_000_000)}),
    ]
    mk = lambda rid, op, start, end: Journey(  # noqa: E731
        req_id=rid, op=op, start_ns=start, end_ns=end, span_count=1,
        by_subsystem={}, critical_path=[])
    js = [
        mk("linux:1", "xemem.attach", 0, 90),    # overlaps, matches metric
        mk("linux:2", "xemem.attach", 10, 30),   # overlaps, smaller
        mk("linux:3", "xemem.get", 0, 95),       # overlaps, wrong op
        mk("linux:4", "xemem.attach", 500, 600),  # outside the window
    ]
    report = evaluate([SloSpec.parse("xemem.attach.ns.p99 < 50us")],
                      FakeRecorder(windows), journeys=js)
    (v,) = report.violations
    # op-matching journeys preferred, ordered biggest first
    assert v.journey_ids == ("linux:1", "linux:2")
    assert "linux:1" in str(v)


def test_violation_carries_open_span_context_from_the_trace():
    spans = [
        SpanNode(span_id=1, parent_id=None, name="xemem.attach", track="t",
                 start_ns=0, end_ns=300, attrs={}),
        SpanNode(span_id=2, parent_id=None, name="early.op", track="t",
                 start_ns=0, end_ns=50, attrs={}),
    ]
    trace = TraceData(spans=spans, roots=_link(spans))
    windows = [window(0, counters={"timeouts": 3})]
    report = evaluate([SloSpec.parse("timeouts.count < 1")],
                      FakeRecorder(windows), trace=trace)
    (v,) = report.violations
    assert v.open_spans == ("xemem.attach",)       # spans window end 100
    assert ("early.op", 0) in v.recent_spans


def test_report_lines_and_doc_round_trip():
    windows = [window(0, counters={"timeouts": 3})]
    specs = [SloSpec.parse("timeouts.count < 1"),
             SloSpec.parse("lat.ns.p99 < 50us")]
    report = evaluate(specs, FakeRecorder(windows))
    text = "\n".join(report.lines())
    assert "VIOLATED x1" in text and "timeouts.count < 1" in text
    assert "OK" in text  # the quantile spec had no data -> 0 windows, OK
    doc = report.to_doc()
    assert doc["ok"] is False
    assert doc["specs"] == [s.raw for s in specs]
    (vdoc,) = doc["violations"]
    assert vdoc["slo"] == "timeouts.count < 1"
    assert vdoc["observed"] == 3.0 and vdoc["window"] == [0, 100]
