"""Engine instrumentation hooks and process-table pruning."""

from repro.obs import EngineObserver, MetricsRegistry
from repro.sim import Engine


def test_events_executed_counts_every_callback():
    ob = EngineObserver()
    eng = Engine(obs=ob)
    for t in range(5):
        eng.call_at(t, lambda: None)
    eng.run()
    assert ob.events_executed == 5
    assert eng.queue_len == 0


def test_queue_depth_sampled_every_event():
    ob = EngineObserver(sample_every=1)
    eng = Engine(obs=ob)
    for t in range(4):
        eng.call_at(10 * t, lambda: None)
    eng.run()
    assert ob.queue_depth.count == ob.events_executed == 4
    # first pop sees the remaining 3 queued events, the last sees 0
    assert ob.queue_depth.max == 3
    assert ob.queue_depth.min == 0


def test_spawn_finish_and_runtime_accounting():
    ob = EngineObserver()
    eng = Engine(obs=ob)

    def proc(delay):
        yield eng.sleep(delay)

    for delay in (10, 20, 30):
        eng.spawn(proc(delay), name=f"p{delay}")
    eng.run()
    assert ob.processes_spawned == 3
    assert ob.processes_finished == 3
    assert ob.process_runtime_ns.count == 3
    assert ob.process_runtime_ns.max == 30
    names = [rec[0] for rec in ob.process_records]
    assert names == ["p10", "p20", "p30"]


def test_process_table_pruned_on_finish():
    eng = Engine()

    def proc():
        yield eng.sleep(1)

    for _ in range(100):
        eng.spawn(proc())
    assert len(eng.live_processes) == 100
    eng.run()
    assert eng.live_processes == ()


def test_live_processes_visible_while_running():
    eng = Engine()
    seen = []

    def watcher():
        yield eng.sleep(5)
        seen.append(len(eng.live_processes))

    def sleeper():
        yield eng.sleep(50)

    eng.spawn(watcher())
    eng.spawn(sleeper())
    eng.run()
    # at t=5 the watcher itself and the sleeper are both still live
    assert seen == [2]
    assert eng.live_processes == ()


def test_profile_collects_hot_sites():
    ob = EngineObserver(profile=True)
    eng = Engine(obs=ob)

    def proc():
        yield eng.sleep(1)
        yield eng.sleep(1)

    eng.spawn(proc())
    eng.run()
    sites = ob.hot_sites()
    assert sites, "profile mode should record callback sites"
    site, calls, secs, _eps = sites[0]
    assert ":" in site
    assert calls >= 1
    assert secs >= 0.0


def test_publish_folds_stats_into_registry():
    ob = EngineObserver(sample_every=1)
    eng = Engine(obs=ob)

    def proc():
        yield eng.sleep(10)

    eng.spawn(proc())
    eng.run()
    reg = MetricsRegistry()
    ob.publish(reg)
    snap = reg.snapshot()
    assert snap["engine.events.executed"] == ob.events_executed
    assert snap["engine.processes.spawned"] == 1
    assert snap["engine.processes.finished"] == 1
    assert snap["engine.process.runtime_ns.max"] == 10
    assert "engine.queue_depth.mean" in snap


def test_process_records_ring_capped():
    ob = EngineObserver(max_process_records=2)
    eng = Engine(obs=ob)

    def proc():
        yield eng.sleep(1)

    for _ in range(5):
        eng.spawn(proc())
    eng.run()
    assert ob.processes_finished == 5
    assert len(ob.process_records) == 2
    assert ob.process_records.dropped == 3
