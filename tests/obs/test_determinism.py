"""Two identical instrumented runs must export byte-identical data."""

import io

from repro import obs
from repro.bench import figures
from repro.hw.costs import MB


def _traced_run():
    with obs.observing(trace=True, metrics=True, engine=True) as ctx:
        figures.fig5_throughput(reps=1, sizes=(16 * MB,))
    chrome = io.StringIO()
    ctx.tracer.to_chrome(chrome)
    jsonl = io.StringIO()
    ctx.tracer.to_jsonl(jsonl)
    return chrome.getvalue(), jsonl.getvalue(), ctx.metrics.to_json()


def test_traced_runs_are_byte_identical():
    first = _traced_run()
    second = _traced_run()
    assert first[0] == second[0]  # Chrome trace
    assert first[1] == second[1]  # JSONL
    assert first[2] == second[2]  # metrics snapshot


def test_instrumentation_does_not_change_results():
    bare = figures.fig5_throughput(reps=1, sizes=(16 * MB,))
    with obs.observing(trace=True, metrics=True, engine=True):
        traced = figures.fig5_throughput(reps=1, sizes=(16 * MB,))
    assert bare.attach_gib_s == traced.attach_gib_s
    assert bare.attach_read_gib_s == traced.attach_read_gib_s
    assert bare.rdma_gib_s == traced.rdma_gib_s
