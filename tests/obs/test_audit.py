"""Tests for the runtime invariant auditor and its engine hook."""

import pytest

from repro import obs
from repro.bench.configs import build_cokernel_system
from repro.hw.costs import MB
from repro.obs.audit import (
    AuditHook,
    Auditor,
    AuditViolation,
    env_enabled,
    env_interval_ns,
)
from repro.sim import Engine
from repro.xemem import XpmemApi


def _attach_scenario(rig, detach=True):
    """One Fig. 3 cross-enclave attach on the standard rig."""
    eng = rig.engine
    kitten = rig.cokernels[0].kernel
    linux = rig.linux.kernel
    kp = kitten.create_process("sim")
    lp = linux.create_process("ana", core_id=2)
    heap = kitten.heap_region(kp)

    def run():
        api_k, api_l = XpmemApi(kp), XpmemApi(lp)
        segid = yield from api_k.xpmem_make(heap.start, 1 * MB)
        apid = yield from api_l.xpmem_get(segid)
        att = yield from api_l.xpmem_attach(apid)
        yield from linux.touch_pages(lp, att.vaddr, att.npages)
        if detach:
            yield from api_l.xpmem_detach(att)
            yield from api_l.xpmem_release(apid)

    eng.run_process(run())
    return kp, lp


# -- clean runs ----------------------------------------------------------------

def test_clean_rig_audits_clean():
    rig = build_cokernel_system(with_audit=True)
    assert rig.auditor is not None
    _attach_scenario(rig)
    hook = rig.auditor
    assert hook.auditor.audits_run > 0
    assert hook.auditor.violations_found == 0
    # an explicit full audit (including quiescent checks) is also clean
    hook.auditor.audit_now(now_ns=rig.engine.now, quiescent=True)


def test_audit_does_not_perturb_the_simulation():
    plain = build_cokernel_system(with_audit=False)
    _attach_scenario(plain)
    audited = build_cokernel_system(with_audit=True)
    _attach_scenario(audited)
    assert audited.engine.now == plain.engine.now
    assert (audited.linux.module.stats == plain.linux.module.stats)


# -- injected violations -------------------------------------------------------

def test_injected_refcount_imbalance_detected_with_span_context():
    with obs.observing(trace=True):
        rig = build_cokernel_system(with_audit=True)
        _attach_scenario(rig, detach=False)
        auditor = rig.auditor.auditor
        assert auditor.tracer is not None
        # corrupt: the owner forgets it handed out the grant
        module = rig.cokernels[0].module
        (segid,) = module.segments
        module.segments[segid].grants_out = 0
        with pytest.raises(AuditViolation) as ei:
            auditor.audit_now(now_ns=rig.engine.now, quiescent=True)
    v = ei.value
    assert v.invariant == "refcount-balance"
    assert v.time_ns == rig.engine.now
    assert v.recent_spans, "violation must carry span context"
    assert any(name.startswith("xemem.") for name, _ in v.recent_spans)
    assert "refcount-balance" in str(v)
    assert "recent:" in str(v)


def test_negative_and_dangling_attachment_counts_detected():
    rig = build_cokernel_system(with_audit=True)
    _attach_scenario(rig)
    module = rig.linux.module
    module._live_attachments[99999] = 3  # live attachments, no grant
    violations = rig.auditor.auditor.check()
    assert any("no grant" in v.detail for v in violations)
    module._live_attachments[99999] = -1
    violations = rig.auditor.auditor.check()
    assert any("negative" in v.detail for v in violations)


def test_mapped_pfn_on_free_list_detected():
    rig = build_cokernel_system(with_audit=True)
    kp, _ = _attach_scenario(rig)
    kitten = rig.cokernels[0].kernel
    pfns = kp.aspace.table.present_pfns()
    p = int(pfns[0])
    kitten.allocator._free.append([p, p + 1])
    kitten.allocator._free.sort()
    violations = rig.auditor.auditor.check()
    assert any(v.invariant == "frame-exclusivity" for v in violations)


def test_free_run_outside_window_detected():
    rig = build_cokernel_system(with_audit=True)
    alloc = rig.cokernels[0].kernel.allocator
    alloc._free.insert(0, [alloc.start_pfn - 8, alloc.start_pfn - 4])
    violations = rig.auditor.auditor.check()
    assert any("outside" in v.detail for v in violations)


def test_region_populated_drift_detected():
    rig = build_cokernel_system(with_audit=True)
    kp, _ = _attach_scenario(rig)
    region = kp.aspace.regions[0]
    region.populated -= 1
    violations = rig.auditor.auditor.check()
    assert any(v.invariant == "pte-region" for v in violations)


def test_stale_walk_cache_pfns_detected():
    rig = build_cokernel_system(with_audit=True)
    kp, _ = _attach_scenario(rig)
    table = kp.aspace.table
    heap = rig.cokernels[0].kernel.heap_region(kp)
    table.translate_range(heap.start, 4)  # populate the walk cache
    entries = table.walk_cache_entries()
    assert entries, "scenario should have cached a walk"
    key = (entries[0][0], entries[0][1])
    gen, pfns = table._walk_cache[key]
    table._walk_cache[key] = (gen, pfns + 1)  # corrupt the cached pfns
    violations = rig.auditor.auditor.check()
    assert any(v.invariant == "walkcache-coherence" for v in violations)


def test_future_generation_cache_entry_detected():
    rig = build_cokernel_system(with_audit=True)
    kp, _ = _attach_scenario(rig)
    table = kp.aspace.table
    heap = rig.cokernels[0].kernel.heap_region(kp)
    table.translate_range(heap.start, 4)
    key = next(iter(table._walk_cache))
    gen, pfns = table._walk_cache[key]
    table._walk_cache[key] = (table.generation + 5, pfns)
    violations = rig.auditor.auditor.check()
    assert any("future generation" in v.detail for v in violations)


def test_unbalanced_channel_detected_at_quiescence():
    rig = build_cokernel_system(with_audit=True)
    _attach_scenario(rig)
    auditor = rig.auditor.auditor
    assert auditor.channels, "rig channels must be watched"
    channel = auditor.channels[0]
    assert channel.transfers_started > 0
    channel.transfers_completed -= 1
    # interval audits don't check channel balance (transfers are in
    # flight mid-run); the quiescent audit must.
    assert auditor.check(quiescent=False) == []
    violations = auditor.check(quiescent=True)
    assert any(v.invariant == "channel-balance" for v in violations)


# -- the engine hook -----------------------------------------------------------

class _CountingAuditor:
    def __init__(self):
        self.calls = []

    def audit_now(self, now_ns=0, quiescent=False):
        self.calls.append((now_ns, quiescent))


def test_hook_audits_on_interval_and_at_quiescence():
    eng = Engine()
    fake = _CountingAuditor()
    eng.obs = AuditHook(fake, interval_ns=100)

    def proc():
        for _ in range(5):
            yield eng.sleep(60)

    eng.run_process(proc())
    periodic = [c for c in fake.calls if not c[1]]
    quiescent = [c for c in fake.calls if c[1]]
    # events land at 60,120,...,300: deadlines 100,200,300 each fire once
    assert [t for t, _ in periodic] == [120, 240, 300]
    assert quiescent and quiescent[-1][0] == 300


def test_hook_rearms_past_long_virtual_jumps():
    eng = Engine()
    fake = _CountingAuditor()
    eng.obs = AuditHook(fake, interval_ns=100)

    def proc():
        yield eng.sleep(1000)
        yield eng.sleep(50)

    eng.run_process(proc())
    periodic = [c for c in fake.calls if not c[1]]
    # one audit at t=1000 (not ten), re-armed to 1100: t=1050 stays quiet
    assert [t for t, _ in periodic] == [1000]


def test_hook_rejects_nonpositive_interval():
    with pytest.raises(ValueError):
        AuditHook(Auditor(), interval_ns=0)


def test_hook_composes_with_inner_observer():
    with obs.observing(metrics=True, engine=True) as ctx:
        rig = build_cokernel_system(with_audit=True)
        assert rig.auditor.inner is not None  # wrapped the obs engine hook
        _attach_scenario(rig)
        snap = ctx.snapshot()
    assert snap["engine.events.executed"] > 0
    assert rig.auditor.auditor.audits_run > 0


# -- environment gating --------------------------------------------------------

def test_env_gating(monkeypatch):
    monkeypatch.delenv("REPRO_AUDIT", raising=False)
    assert not env_enabled()
    assert build_cokernel_system().auditor is None
    monkeypatch.setenv("REPRO_AUDIT", "0")
    assert not env_enabled()
    monkeypatch.setenv("REPRO_AUDIT", "1")
    assert env_enabled()
    rig = build_cokernel_system()
    assert rig.auditor is not None
    # explicit opt-out wins over the environment
    assert build_cokernel_system(with_audit=False).auditor is None


def test_env_interval(monkeypatch):
    monkeypatch.delenv("REPRO_AUDIT_INTERVAL_NS", raising=False)
    assert env_interval_ns() == 1_000_000
    monkeypatch.setenv("REPRO_AUDIT_INTERVAL_NS", "2500")
    assert env_interval_ns() == 2500
    monkeypatch.setenv("REPRO_AUDIT", "1")
    rig = build_cokernel_system()
    assert rig.auditor.interval_ns == 2500


def test_violation_message_shape():
    v = AuditViolation("refcount-balance", "segment 7 is off", time_ns=42,
                       open_spans=("xemem.attach",),
                       recent_spans=(("pisces.transfer", 10),))
    assert isinstance(v, AssertionError)
    msg = str(v)
    assert "[refcount-balance] t=42ns: segment 7 is off" in msg
    assert "in flight: xemem.attach" in msg
    assert "recent: pisces.transfer@10" in msg
