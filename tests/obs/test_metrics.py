"""Unit tests for the metrics registry."""

import io
import json

import pytest

from repro.obs import MetricsRegistry
from repro.obs.metrics import NULL_METRIC


def test_counter_accumulates():
    reg = MetricsRegistry()
    reg.counter("xemem.make.count").inc()
    reg.counter("xemem.make.count").inc(4)
    assert reg.counter("xemem.make.count").value == 5


def test_counter_rejects_decrease():
    reg = MetricsRegistry()
    with pytest.raises(ValueError):
        reg.counter("c").inc(-1)


def test_gauge_last_write_wins():
    reg = MetricsRegistry()
    reg.gauge("engine.queue_depth.max").set(3)
    reg.gauge("engine.queue_depth.max").set(17.5)
    assert reg.gauge("engine.queue_depth.max").value == 17.5


def test_histogram_buckets_and_moments():
    reg = MetricsRegistry()
    h = reg.histogram("attach.ns", bounds=(10, 100))
    for x in (5, 10, 50, 1000):
        h.observe(x)
    assert h.count == 4
    assert h.bucket_counts == [2, 1, 1]  # <=10, <=100, +inf
    assert h.stats.min == 5
    assert h.stats.max == 1000


def test_histogram_rejects_unsorted_bounds():
    reg = MetricsRegistry()
    with pytest.raises(ValueError):
        reg.histogram("h", bounds=(100, 10))


def test_histogram_quantiles_interpolate_within_buckets():
    reg = MetricsRegistry()
    h = reg.histogram("lat.ns", bounds=(10, 100))
    for x in range(1, 101):  # uniform 1..100
        h.observe(x)
    # 10 samples land in (-inf,10], 90 in (10,100]; interpolation inside
    # the second bucket recovers the uniform quantiles.
    assert h.quantile(0.50) == pytest.approx(50.0)
    assert h.quantile(0.95) == pytest.approx(95.0)
    assert h.quantile(1.0) == pytest.approx(100.0)
    # estimates are clamped to the observed range
    assert h.quantile(0.0) == pytest.approx(1.0)


def test_histogram_quantile_overflow_bucket_uses_observed_max():
    reg = MetricsRegistry()
    h = reg.histogram("lat.ns", bounds=(10,))
    h.observe(5)
    h.observe(1000)
    assert h.quantile(1.0) == pytest.approx(1000.0)
    assert h.quantile(0.0) == pytest.approx(5.0)


def test_histogram_quantile_empty_and_bad_q():
    reg = MetricsRegistry()
    h = reg.histogram("lat.ns")
    assert h.quantile(0.5) == 0.0
    with pytest.raises(ValueError):
        h.quantile(1.5)
    with pytest.raises(ValueError):
        h.quantile(-0.1)


def test_histogram_quantile_single_sample_collapses_to_it():
    reg = MetricsRegistry()
    h = reg.histogram("lat.ns", bounds=(10, 100))
    h.observe(42)
    # with one sample the observed min == max == 42, so every quantile
    # clamps to it regardless of where interpolation lands
    for q in (0.0, 0.5, 0.99, 1.0):
        assert h.quantile(q) == pytest.approx(42.0)


def test_histogram_quantile_duplicate_heavy_stays_in_observed_range():
    reg = MetricsRegistry()
    h = reg.histogram("lat.ns", bounds=(10, 100, 1000))
    for _ in range(99):
        h.observe(50)
    h.observe(500)
    # 99 duplicates in (10,100]: interpolation estimates inside that
    # bucket, clamped to the exact observed [50, 500]
    assert 50.0 <= h.quantile(0.50) <= 100.0
    assert h.quantile(0.0) == pytest.approx(50.0)
    assert h.quantile(1.0) == pytest.approx(500.0)
    assert h.quantile(0.999) <= 500.0


def test_snapshot_includes_percentiles_and_extremes():
    reg = MetricsRegistry()
    h = reg.histogram("xemem.attach.ns", bounds=(1000, 10_000))
    for x in (100, 2000, 3000, 50_000):
        h.observe(x)
    snap = reg.snapshot()["xemem.attach.ns"]
    assert snap["min"] == 100
    assert snap["max"] == 50_000
    assert {"p50", "p95", "p99"} <= set(snap)
    assert 100 <= snap["p50"] <= snap["p95"] <= snap["p99"] <= 50_000


def test_kind_mismatch_raises():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(TypeError):
        reg.gauge("x")


def test_names_prefix_filter():
    reg = MetricsRegistry()
    for name in ("xemem.make.count", "xemem.get.count", "nic.rdma.msgs"):
        reg.counter(name).inc()
    assert reg.names("xemem.") == ["xemem.get.count", "xemem.make.count"]
    assert len(reg) == 3


def test_disabled_registry_returns_shared_null_sink():
    reg = MetricsRegistry(enabled=False)
    assert reg.counter("a") is NULL_METRIC
    assert reg.gauge("b") is NULL_METRIC
    assert reg.histogram("c") is NULL_METRIC
    reg.counter("a").inc()
    assert len(reg) == 0
    assert reg.snapshot() == {}


def test_snapshot_round_trips_through_json():
    reg = MetricsRegistry()
    reg.counter("pisces.channel.msgs").inc(7)
    reg.gauge("engine.queue_depth.mean").set(2.5)
    h = reg.histogram("xemem.attach.ns", bounds=(1000, 10_000))
    h.observe(500)
    h.observe(5000)

    snap = reg.snapshot()
    restored = json.loads(json.dumps(snap))
    assert restored == snap
    assert restored["pisces.channel.msgs"] == 7
    assert restored["engine.queue_depth.mean"] == 2.5
    hist = restored["xemem.attach.ns"]
    assert hist["count"] == 2
    assert hist["buckets"] == {"1000": 1, "10000": 1, "+inf": 0}
    assert hist["mean"] == pytest.approx(2750.0)


def test_clear_resets_in_place_and_keeps_handed_out_references():
    """Regression: clear() used to drop the registry dict, so a cached
    Counter kept counting into an object no snapshot would ever see."""
    reg = MetricsRegistry()
    c = reg.counter("xemem.make.count")
    g = reg.gauge("queue.depth")
    h = reg.histogram("attach.ns", bounds=(10,))
    c.inc(5)
    g.set(3.5)
    h.observe(7)

    reg.clear()
    assert reg.counter("xemem.make.count") is c
    assert c.value == 0 and g.value == 0.0 and h.count == 0

    c.inc()  # the cached reference still feeds the registry
    assert reg.snapshot()["xemem.make.count"] == 1


def test_drop_all_detaches_cached_references():
    reg = MetricsRegistry()
    c = reg.counter("x")
    reg.drop_all()
    c.inc()  # writes into a detached object
    assert len(reg) == 0
    assert reg.counter("x") is not c
    assert reg.counter("x").value == 0


def test_to_json_is_deterministic():
    def build():
        reg = MetricsRegistry()
        reg.counter("b").inc(2)
        reg.counter("a").inc(1)
        reg.histogram("h").observe(42)
        buf = io.StringIO()
        reg.to_json(buf)
        return buf.getvalue()

    assert build() == build()
    assert json.loads(build())["a"] == 1
