"""Tests for the MPI collectives model."""

import pytest

from repro.cluster import MpiWorld
from repro.hw.costs import CostModel
from repro.sim import Engine


def test_allreduce_releases_all_at_max_plus_cost():
    eng = Engine()
    costs = CostModel()
    world = MpiWorld(eng, 3, costs)
    finish = {}

    def rank(r, arrive_at):
        yield eng.sleep(arrive_at)
        yield from world.allreduce(8)
        finish[r] = eng.now

    eng.spawn(rank(0, 100))
    eng.spawn(rank(1, 500))
    eng.spawn(rank(2, 300))
    eng.run()
    cost = world.collective_cost_ns(8)
    assert cost > 0
    assert finish == {0: 500 + cost, 1: 500 + cost, 2: 500 + cost}
    assert world.collectives == 1


def test_collective_cost_log_tree():
    eng = Engine()
    costs = CostModel()
    w2 = MpiWorld(eng, 2, costs)
    w8 = MpiWorld(eng, 8, costs)
    assert w8.collective_cost_ns(8) == 3 * w2.collective_cost_ns(8)
    w1 = MpiWorld(eng, 1, costs)
    assert w1.collective_cost_ns(8) == 0


def test_single_rank_allreduce_is_instantish():
    eng = Engine()
    world = MpiWorld(eng, 1, CostModel())

    def rank():
        yield from world.allreduce(8)
        return eng.now

    assert eng.run_process(rank()) == 0


def test_repeated_collectives_track_generations():
    eng = Engine()
    world = MpiWorld(eng, 2, CostModel())
    log = []

    def rank(r):
        for i in range(5):
            yield eng.sleep(10 * (r + 1))
            yield from world.allreduce(8)
            log.append((i, r, eng.now))

    eng.spawn(rank(0))
    eng.spawn(rank(1))
    eng.run()
    assert world.collectives == 5
    # both ranks observe identical completion times per generation
    for i in range(5):
        times = {t for (g, _r, t) in log if g == i}
        assert len(times) == 1


def test_barrier_and_wait_accounting():
    eng = Engine()
    world = MpiWorld(eng, 2, CostModel())

    def fast():
        yield from world.barrier()

    def slow():
        yield eng.sleep(1000)
        yield from world.barrier()

    eng.spawn(fast())
    eng.spawn(slow())
    eng.run()
    assert world.total_wait_ns >= 1000  # the fast rank waited


def test_bad_rank_count():
    with pytest.raises(ValueError):
        MpiWorld(Engine(), 0, CostModel())


def test_exchange_pairs_release_together():
    eng = Engine()
    costs = CostModel()
    world = MpiWorld(eng, 2, costs)
    done = {}

    def rank(r, arrive_at):
        yield eng.sleep(arrive_at)
        yield from world.exchange(r, 1 - r, 8192)
        done[r] = eng.now

    eng.spawn(rank(0, 100))
    eng.spawn(rank(1, 700))
    eng.run()
    cost = costs.mpi_latency_ns + int(8192 * 1e9 / costs.mpi_bw_bytes_per_s)
    assert done == {0: 700 + cost, 1: 700 + cost}
    assert world.exchanges == 2


def test_exchange_chain_no_deadlock():
    """The HPCCG halo pattern: every rank exchanges with both neighbors."""
    eng = Engine()
    world = MpiWorld(eng, 4, CostModel())
    finished = []

    def rank(r):
        for _ in range(3):  # three "iterations"
            for peer in (r - 1, r + 1):
                if 0 <= peer < 4:
                    yield from world.exchange(r, peer, 4096)
            yield from world.allreduce(16)
        finished.append(r)

    for r in range(4):
        eng.spawn(rank(r))
    eng.run()
    assert sorted(finished) == [0, 1, 2, 3]
    assert world.collectives == 3


def test_exchange_validation():
    eng = Engine()
    world = MpiWorld(eng, 2, CostModel())

    def bad_self():
        yield from world.exchange(0, 0, 8)

    with pytest.raises(ValueError):
        eng.run_process(bad_self())

    def bad_peer():
        yield from world.exchange(0, 5, 8)

    with pytest.raises(ValueError):
        eng.run_process(bad_peer())
