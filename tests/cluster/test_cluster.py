"""Integration tests for the multi-node cluster (small scale)."""

import pytest

from repro.cluster import Cluster, ClusterConfig
from repro.cluster.rdma import RdmaBandwidthTest
from repro.hw.costs import CostModel, MB
from repro.sim import Engine
from repro.workloads.hpccg import HpccgProblem


def small_cluster_config(**kw):
    defaults = dict(
        nodes=2,
        enclave_mode="linux_only",
        iterations=30,
        comm_interval=10,
        data_bytes=32 * MB,
        problem=HpccgProblem(24, 24, 24),
        sim_ncores=8,
        seed=4,
    )
    defaults.update(kw)
    return ClusterConfig(**defaults)


def test_config_validation():
    with pytest.raises(ValueError):
        ClusterConfig(enclave_mode="bare")
    with pytest.raises(ValueError):
        ClusterConfig(nodes=0)


def test_linux_only_cluster_runs():
    res = Cluster(small_cluster_config()).run()
    assert res.completion_s > 0
    assert len(res.per_node) == 2
    assert all(r.data_marks_verified for r in res.per_node)
    assert res.completion_s == max(r.sim_time_s for r in res.per_node)
    assert res.mean_sim_time_s <= res.completion_s


def test_multi_enclave_cluster_runs():
    res = Cluster(small_cluster_config(enclave_mode="multi_enclave")).run()
    assert all(r.data_marks_verified for r in res.per_node)


def test_multi_enclave_sim_is_in_a_vm():
    cluster = Cluster(small_cluster_config(enclave_mode="multi_enclave", nodes=1))
    sim_kernel = cluster.workloads[0].sim_enclave.kernel
    assert getattr(sim_kernel, "virtualized", False)
    ana_kernel = cluster.workloads[0].analytics_enclave.kernel
    assert ana_kernel.kernel_type == "linux" and not getattr(
        ana_kernel, "virtualized", False
    )


def test_collectives_count_matches_iterations():
    cfg = small_cluster_config(nodes=2)
    cluster = Cluster(cfg)
    cluster.run()
    assert cluster.mpi.collectives == cfg.iterations


def test_nodes_complete_together_via_allreduce():
    """Per-iteration allreduce forces lockstep: node completion times are
    nearly identical even with different noise seeds."""
    res = Cluster(small_cluster_config(nodes=4)).run()
    times = [r.sim_time_s for r in res.per_node]
    assert max(times) - min(times) < 0.05 * max(times)


def test_noise_amplification_direction():
    """More Linux-only nodes => more cluster time (same per-node work)."""
    t1 = Cluster(small_cluster_config(nodes=1)).run().completion_s
    t4 = Cluster(small_cluster_config(nodes=4)).run().completion_s
    assert t4 > t1


def test_deterministic_given_seed():
    a = Cluster(small_cluster_config(nodes=2)).run().completion_s
    b = Cluster(small_cluster_config(nodes=2)).run().completion_s
    assert a == b


def test_rdma_bandwidth_near_configured_rate():
    eng = Engine()
    costs = CostModel()
    test = RdmaBandwidthTest(eng, costs)

    def run():
        result = yield from test.run(64 * MB, repetitions=20)
        return result

    result = eng.run_process(run())
    gib = result.bandwidth_gib_s
    cfg = costs.rdma_bw_bytes_per_s / (1024**3)
    assert gib == pytest.approx(cfg, rel=0.02)


def test_rdma_validation():
    eng = Engine()
    test = RdmaBandwidthTest(eng, CostModel())

    def run():
        yield from test.run(1024, repetitions=0)

    with pytest.raises(ValueError):
        eng.run_process(run())
