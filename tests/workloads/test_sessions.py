"""Tests for the closed-loop serving driver (repro.workloads.sessions)."""

from repro import obs
from repro.obs import analysis
from repro.obs.export import folded_stacks, prometheus_text
from repro.sim import fastpath
from repro.workloads.sessions import SessionConfig, run_sessions


def small_cfg(**over):
    base = dict(seed=3, sessions=3, ops=2, cokernels=2, pages=4)
    base.update(over)
    return SessionConfig(**base)


def test_serve_report_counts_and_latency_summary():
    report = run_sessions(small_cfg())
    assert report.exported == 2
    assert report.segment_names == ["svc/kitten0", "svc/kitten1"]
    assert report.ops_total == 3 * 2
    assert report.ops_ok == report.ops_total  # healthy rig: no errors
    assert report.attach_count == report.ops_ok
    assert 0 < report.attach_p50_ns <= report.attach_p99_ns
    assert report.attach_p99_ns <= report.attach_max_ns
    assert report.drained
    assert report.end_ns > 0
    assert any("attach latency" in line for line in report.lines())


def test_same_seed_reproduces_the_run_exactly():
    a = run_sessions(small_cfg())
    b = run_sessions(small_cfg())
    assert a == b  # dataclass equality covers every recorded field


def test_different_seeds_change_the_interleaving():
    a = run_sessions(small_cfg(seed=1))
    b = run_sessions(small_cfg(seed=2))
    assert a.end_ns != b.end_ns  # think times reshuffle the timeline


def test_kwargs_form_matches_config_form():
    assert run_sessions(seed=3, sessions=3, ops=2, cokernels=2,
                        pages=4) == run_sessions(small_cfg())


def _observed_exports(cfg):
    """(prometheus, folded, timeseries json) for one observed run."""
    with obs.observing(trace=True, metrics=True, timeseries=True,
                       window_ns=50_000) as ctx:
        report = run_sessions(cfg)
        ctx.timeseries.finish(report.end_ns)
    trace = analysis.from_tracer(ctx.tracer)
    exclude = ("engine.", "fastpath.")
    return (
        prometheus_text(ctx.metrics, exclude_prefixes=exclude),
        folded_stacks(trace),
        ctx.timeseries.to_json(exclude_prefixes=exclude),
    )


def test_observed_run_exports_are_byte_identical_across_repeats():
    assert _observed_exports(small_cfg()) == _observed_exports(small_cfg())


def test_fast_and_slow_paths_export_identical_bytes():
    fast = _observed_exports(small_cfg())
    with fastpath.disabled():
        slow = _observed_exports(small_cfg())
    assert fast == slow


def test_observed_run_produces_journeys_for_every_op():
    cfg = small_cfg()
    with obs.observing(trace=True, metrics=True) as ctx:
        report = run_sessions(cfg)
    trace = analysis.from_tracer(ctx.tracer)
    js = analysis.journeys(trace)
    # every client round allocates req-ids; at least one journey per op
    assert len(js) >= report.ops_total
    assert all(j.req_id for j in js)
    assert any(j.op.startswith("xemem.") for j in js)
