"""Integration tests for the composed in situ workload (small scale)."""

import pytest

from repro.bench.configs import build_insitu_rig, INSITU_CONFIG_NAMES
from repro.hw.costs import MB
from repro.workloads.hpccg import HpccgProblem
from repro.workloads.insitu import InSituConfig, SharedFlags

SMALL = dict(
    iterations=60,
    comm_interval=20,
    data_bytes=16 * MB,
    problem=HpccgProblem(24, 24, 24),
)


def small_config(**kw):
    return InSituConfig(**{**SMALL, **kw})


def test_config_validation():
    with pytest.raises(ValueError):
        InSituConfig(execution="turbo")
    with pytest.raises(ValueError):
        InSituConfig(attach="sometimes")
    with pytest.raises(ValueError):
        InSituConfig(iterations=10, comm_interval=3)
    assert InSituConfig(iterations=600, comm_interval=40).comm_points == 15


def test_unknown_rig_rejected():
    with pytest.raises(ValueError):
        build_insitu_rig("bare_metal", small_config())


@pytest.mark.parametrize("name", INSITU_CONFIG_NAMES)
def test_all_configs_complete_and_verify(name):
    rig = build_insitu_rig(name, small_config(execution="sync"), seed=7)
    res = rig["workload"].run()
    assert res.sim_time_s > 0
    assert res.data_marks_verified     # real shared-memory handshake worked
    assert len(res.stream_times_s) == 3
    assert len(res.attach_times_s) == 1  # one_time model


def test_recurring_attaches_every_point():
    rig = build_insitu_rig("kitten_linux", small_config(attach="recurring"), seed=7)
    res = rig["workload"].run()
    assert len(res.attach_times_s) == 3


def test_async_faster_than_sync_same_seed():
    times = {}
    for execution in ("sync", "async"):
        rig = build_insitu_rig("kitten_linux", small_config(execution=execution), seed=5)
        times[execution] = rig["workload"].run().sim_time_s
    assert times["async"] < times["sync"]


def test_linux_local_recurring_faults_per_point():
    rig = build_insitu_rig(
        "linux_linux", small_config(execution="sync", attach="recurring"), seed=5
    )
    res = rig["workload"].run()
    pages = 16 * MB // 4096
    assert res.analytics_faults == 3 * pages  # fresh faults at every point


def test_linux_local_one_time_faults_once():
    rig = build_insitu_rig(
        "linux_linux", small_config(execution="sync", attach="one_time"), seed=5
    )
    res = rig["workload"].run()
    assert res.analytics_faults == 16 * MB // 4096


def test_numerics_verification_flag():
    rig = build_insitu_rig(
        "kitten_linux", small_config(verify_numerics=True), seed=5
    )
    res = rig["workload"].run()
    assert res.numerics_verified is True


def test_shared_flags_wrapper(rig):
    _eng, _node, _linux, kitten = rig
    proc = kitten.create_process("p")
    heap = kitten.heap_region(proc)
    pfns = proc.aspace.table.translate_range(heap.start, 1)
    flags = SharedFlags(kitten.mem.map_region(pfns))
    flags.seq = 5
    flags.ack = 3
    flags.data_segid = 0x1234
    assert (flags.seq, flags.ack, flags.data_segid) == (5, 3, 0x1234)


def test_deterministic_given_seed():
    def once():
        rig = build_insitu_rig("linux_linux", small_config(execution="async"), seed=9)
        return rig["workload"].run().sim_time_s

    assert once() == once()


def test_different_seeds_vary_linux_time():
    times = set()
    for seed in range(3):
        rig = build_insitu_rig("linux_linux", small_config(), seed=seed)
        times.add(round(rig["workload"].run().sim_time_s, 6))
    assert len(times) == 3  # noise profiles differ by seed
