"""Tests for the Selfish Detour benchmark (Fig. 7 machinery)."""

import pytest

from repro.kernels.noise import PeriodicNoise, attach_noise_profile
from repro.workloads.selfish import SelfishDetour

SECOND = 1_000_000_000


def test_detours_merge_noise_and_steal_log(rig):
    _eng, _node, _linux, kitten = rig
    cid = kitten.cores[0].core_id
    kitten.noise_sources[cid] = [
        PeriodicNoise(10_000_000, 12_000, tag="hw-baseline")
    ]
    kitten.cores[0].log_steal(5_000_000, 23_000_000, "xemem-walk:262144p")
    sd = SelfishDetour(kitten, cid)
    events = sd.detours(0, SECOND)
    tags = {ev.source for ev in events}
    assert "hw-baseline" in tags and "xemem-walk:262144p" in tags
    # sorted by time
    times = [ev.time_ns for ev in events]
    assert times == sorted(times)


def test_threshold_filters_small_gaps(rig):
    _eng, _node, _linux, kitten = rig
    cid = kitten.cores[0].core_id
    kitten.noise_sources[cid] = [PeriodicNoise(1_000_000, 500, tag="tiny")]
    sd = SelfishDetour(kitten, cid, threshold_ns=1_000)
    assert sd.detours(0, SECOND) == []
    sd_fine = SelfishDetour(kitten, cid, threshold_ns=100)
    assert len(sd_fine.detours(0, SECOND)) > 0


def test_source_filter(rig):
    _eng, _node, _linux, kitten = rig
    cid = kitten.cores[0].core_id
    attach_noise_profile(kitten, seed=1)
    kitten.cores[0].log_steal(100, 50_000, "xemem-walk:512p")
    sd = SelfishDetour(kitten, cid)
    only_walks = sd.detours(0, SECOND, sources=["xemem-walk"])
    assert len(only_walks) == 1
    assert only_walks[0].duration_us == 50.0


def test_kitten_profile_bands(rig):
    """The Fig. 7 baseline: frequent ~12us events plus ~100us SMIs."""
    _eng, _node, _linux, kitten = rig
    attach_noise_profile(kitten, seed=2)
    cid = kitten.cores[0].core_id
    sd = SelfishDetour(kitten, cid)
    events = sd.detours(0, 10 * SECOND)
    baseline = [ev for ev in events if ev.source == "hw-baseline"]
    smis = [ev for ev in events if ev.source == "smi"]
    assert len(baseline) == pytest.approx(1000, abs=50)   # every ~10 ms
    assert len(smis) == pytest.approx(10, abs=2)          # every ~1 s
    assert all(abs(ev.duration_us - 12.0) < 1 for ev in baseline)
    assert all(abs(ev.duration_us - 100.0) < 1 for ev in smis)


def test_stolen_fraction(rig):
    _eng, _node, _linux, kitten = rig
    cid = kitten.cores[0].core_id
    kitten.noise_sources[cid] = [PeriodicNoise(1_000_000, 100_000, tag="n")]
    sd = SelfishDetour(kitten, cid)
    assert sd.stolen_fraction(0, SECOND) == pytest.approx(0.1, rel=0.05)


def test_window_validation(rig):
    _eng, _node, _linux, kitten = rig
    sd = SelfishDetour(kitten, kitten.cores[0].core_id)
    with pytest.raises(ValueError):
        sd.detours(100, 100)
    with pytest.raises(ValueError):
        SelfishDetour(kitten, 0, threshold_ns=0)
