"""Tests for the HPCCG problem/solver: real numerics + timing model."""

import numpy as np
import pytest

from repro.hw.costs import CostModel
from repro.workloads.hpccg import (
    HpccgProblem,
    HpccgSolver,
    HpccgTiming,
    NNZ_PER_ROW,
    STENCIL_DIAG,
)


def test_problem_dimensions():
    p = HpccgProblem(10, 20, 30)
    assert p.rows == 6000
    assert p.nnz == 6000 * 27
    with pytest.raises(ValueError):
        HpccgProblem(1, 10, 10)


def test_iteration_time_scales_with_cores():
    p = HpccgProblem(100, 100, 100)
    c = CostModel()
    assert p.iteration_ns(c, 1) == pytest.approx(8 * p.iteration_ns(c, 8), rel=1e-9)
    with pytest.raises(ValueError):
        p.iteration_ns(c, 0)


def test_operator_center_point():
    """A delta function maps to the stencil itself."""
    p = HpccgProblem(5, 5, 5)
    s = HpccgSolver(p)
    x = np.zeros(p.rows)
    center = 2 * 25 + 2 * 5 + 2  # (2,2,2)
    x[center] = 1.0
    y = s.apply(x)
    grid = y.reshape(5, 5, 5)
    assert grid[2, 2, 2] == STENCIL_DIAG
    assert grid[1, 2, 2] == -1.0
    assert grid[3, 3, 3] == -1.0
    assert grid[0, 0, 0] == 0.0  # outside the 3^3 neighborhood
    # exactly 27 nonzeros
    assert np.count_nonzero(grid) == NNZ_PER_ROW


def test_operator_is_symmetric():
    p = HpccgProblem(4, 5, 6)
    s = HpccgSolver(p)
    rng = np.random.default_rng(1)
    u = rng.standard_normal(p.rows)
    v = rng.standard_normal(p.rows)
    assert float(u @ s.apply(v)) == pytest.approx(float(v @ s.apply(u)), rel=1e-12)


def test_operator_is_positive_definite_sample():
    p = HpccgProblem(6, 6, 6)
    s = HpccgSolver(p)
    rng = np.random.default_rng(2)
    for _ in range(5):
        x = rng.standard_normal(p.rows)
        assert float(x @ s.apply(x)) > 0


def test_cg_converges_and_solves():
    p = HpccgProblem(12, 12, 12)
    s = HpccgSolver(p)
    b = s.default_rhs(seed=3)
    x, history = s.solve(b, tol=1e-10, max_iters=300)
    assert history[-1] < 1e-10
    # residual history is (essentially) decreasing
    assert history[-1] < history[0]
    # and the solution actually satisfies the system
    assert np.linalg.norm(s.apply(x) - b) / np.linalg.norm(b) < 1e-9


def test_cg_callback_fires_every_iteration():
    p = HpccgProblem(8, 8, 8)
    s = HpccgSolver(p)
    seen = []
    s.solve(s.default_rhs(), tol=0.0, max_iters=25,
            callback=lambda it, res: seen.append(it))
    assert seen == list(range(1, 26))


def test_apply_shape_validation():
    s = HpccgSolver(HpccgProblem(4, 4, 4))
    with pytest.raises(ValueError):
        s.apply(np.zeros(10))
    with pytest.raises(ValueError):
        s.solve(np.zeros(10))


def test_timing_wrapper():
    c = CostModel()
    t = HpccgTiming(HpccgProblem(50, 50, 50), iterations=10, ncores=2,
                    compute_slowdown=1.5)
    assert t.total_compute_ns(c) == 10 * t.iteration_ns(c)
    base = HpccgTiming(HpccgProblem(50, 50, 50), iterations=10, ncores=2)
    assert t.iteration_ns(c) == pytest.approx(1.5 * base.iteration_ns(c), rel=0.01)
