"""The soak harness's three contracts.

1. Determinism: same config → byte-identical BENCH_serving.json across
   reruns and across the fastpath/fidelity twins.
2. Graceful degradation: past saturation the protected ramp holds
   goodput near its peak while the unprotected baseline collapses —
   in the same artifact, same seed, same fault plan, same arrivals.
3. CLI: exit 0 when the protected run meets its SLOs, exit 4 (with an
   incident bundle) when it breaches them.
"""

import json

import pytest

from repro.sim import fastpath
from repro.workloads.soak import (
    SoakConfig, bench_doc, main, run_soak, run_soak_pair,
)

#: Small but still saturating: capacity of the 2-cokernel rig is
#: ~120-150 flows/ms, so this ramp ends ~20x past it — deep enough that
#: the unprotected baseline exhausts deadlines+retries and starts
#: abandoning — while keeping the test in the low seconds.
FAST = dict(
    seed=0, cokernels=2, step_ns=200_000,
    rates_per_ms=(60, 240, 960, 2560),
)


def doc_bytes(**overrides):
    cfg = SoakConfig(**{**FAST, **overrides})
    protected, baseline = run_soak_pair(cfg)
    return json.dumps(bench_doc(protected, baseline), sort_keys=True)


@pytest.fixture(scope="module")
def fast_pair():
    return run_soak_pair(SoakConfig(**FAST))


def test_flows_all_settle_and_drain(fast_pair):
    for report in fast_pair:
        assert report.drained
        assert report.exported == 2
        outcomes = report.outcome_counts()
        # conservation: every offered flow settled exactly once
        assert sum(outcomes.values()) == report.offered_total
        assert report.ok_total > 0


def test_protected_admission_ledger_balances(fast_pair):
    protected, baseline = fast_pair
    adm = protected.admission
    assert adm["offered"] == (
        adm["admitted"] + adm["rejected"] + adm["shed"] + adm["aborted"]
        + adm["waiting"]
    )
    assert adm["waiting"] == 0  # drained
    assert baseline.admission == {}  # unarmed rig has no ledger


def test_same_seed_same_bytes(fast_pair):
    again = run_soak_pair(SoakConfig(**FAST))
    for a, b in zip(fast_pair, again):
        assert a == b
    first = json.dumps(bench_doc(*fast_pair), sort_keys=True)
    assert doc_bytes() == first
    assert doc_bytes(seed=1) != first  # the seed is actually consumed


def test_fastpath_twins_are_byte_identical(fast_pair):
    with fastpath.disabled():
        slow = doc_bytes()
    assert slow == json.dumps(bench_doc(*fast_pair), sort_keys=True)


def test_graceful_degradation_past_saturation(fast_pair):
    protected, baseline = fast_pair
    # the ramp actually crossed saturation: the final step offered more
    # than either mode could complete
    assert protected.steps[-1].offered > protected.steps[-1].ok
    # protected: goodput holds near peak, by shedding/rejecting cheaply
    assert protected.final_retention >= 0.8
    assert protected.admission["rejected"] + protected.admission["shed"] > 0
    # baseline: the same load collapses goodput (retry storm + orphaned
    # queue work); the gap is the whole point of the experiment
    assert baseline.final_retention < protected.final_retention
    assert (protected.final_goodput_per_ms
            > 1.5 * baseline.final_goodput_per_ms)
    # and the baseline's pain shows up as timeouts, not rejections
    assert baseline.outcome_counts()["abandoned"] > 0
    assert baseline.outcome_counts()["rejected"] == 0
    assert baseline.outcome_counts()["shed"] == 0


def test_bench_doc_keys_feed_the_gate(fast_pair):
    doc = bench_doc(*fast_pair)
    assert doc["benchmark"] == "soak-serving"
    # rate keys gate higher-is-better, latency keys lower-is-better;
    # both families must be present for repro.obs.bench to diff them
    assert "protected_final_goodput_rate" in doc
    assert "pre_saturation_p99_attach_latency_ns" in doc
    assert doc["protected_retention_rate"] >= 0.8
    for i in range(len(FAST["rates_per_ms"])):
        assert f"protected_step{i}_p99_attach_latency_ns" in doc
        assert f"baseline_step{i}_goodput_rate" in doc


def test_cli_exit_0_and_writes_json(tmp_path, capsys):
    out = tmp_path / "BENCH_serving.json"
    code = main([
        "--rates", "60,240,960", "--step-ns", "200000",
        "--out", str(out),
    ])
    assert code == 0
    doc = json.loads(out.read_text())
    assert doc["benchmark"] == "soak-serving"
    text = capsys.readouterr().out
    assert "SLOs (protected):" in text
    assert "VIOLATED" not in text


def test_cli_exit_4_on_slo_breach_with_bundle(tmp_path, capsys):
    code = main([
        "--rates", "60,240,960", "--step-ns", "200000",
        "--slo-p99-ns", "1",  # unattainable bound forces the breach path
        "--bundle-dir", str(tmp_path),
    ])
    assert code == 4
    text = capsys.readouterr().out
    assert "VIOLATED: soak.attach.p99" in text
    assert "incident bundle:" in text
    bundle = tmp_path / "incident-slo"
    assert (bundle / "trigger.json").exists() or any(bundle.iterdir())
