"""Tests for STREAM and the noise-aware compute helper."""

import pytest

from repro.hw.costs import CostModel, MB
from repro.kernels.noise import PeriodicNoise
from repro.workloads.compute import noise_aware_compute
from repro.workloads.stream import STREAM_TRAFFIC_MULTIPLE, StreamBenchmark


def test_noise_free_compute_takes_base_time(rig):
    eng, _node, _linux, kitten = rig
    proc = kitten.create_process("app")

    def run():
        elapsed = yield from noise_aware_compute(kitten, proc, 1_000_000)
        return elapsed

    assert eng.run_process(run()) == 1_000_000


def test_compute_extends_for_noise(rig):
    eng, _node, _linux, kitten = rig
    proc = kitten.create_process("app")
    cid = proc.core_id
    # 10% noise: 100us every 1ms
    kitten.noise_sources[cid] = [PeriodicNoise(1_000_000, 100_000, tag="n")]

    def run():
        elapsed = yield from noise_aware_compute(kitten, proc, 10_000_000)
        return elapsed

    elapsed = eng.run_process(run())
    stolen = kitten.stolen_ns(cid, 0, elapsed)
    assert elapsed == 10_000_000 + stolen
    assert elapsed > 10_500_000  # noticeably extended


def test_compute_slowdown_factor(rig):
    eng, _node, _linux, kitten = rig
    proc = kitten.create_process("app")

    def run():
        elapsed = yield from noise_aware_compute(kitten, proc, 1_000_000, slowdown=2.0)
        return elapsed

    assert eng.run_process(run()) == 2_000_000


def test_negative_compute_rejected(rig):
    eng, _node, _linux, kitten = rig
    proc = kitten.create_process("app")

    def run():
        yield from noise_aware_compute(kitten, proc, -1)

    with pytest.raises(ValueError):
        eng.run_process(run())


def test_stream_timing_and_verification(rig):
    eng, _node, _linux, kitten = rig
    proc = kitten.create_process("app")
    heap = kitten.heap_region(proc)
    pfns = proc.aspace.table.translate_range(heap.start, heap.npages)
    view = kitten.mem.map_region(pfns)
    view.fill(3)
    costs = kitten.costs
    region_bytes = 64 * MB

    def run():
        bench = StreamBenchmark(kitten, proc)
        result = yield from bench.run(view, region_bytes)
        return result

    result = eng.run_process(run())
    assert result.verified  # the triad identity held on real data
    expected = costs.memcpy_ns(region_bytes) + int(
        region_bytes * STREAM_TRAFFIC_MULTIPLE * 1e9 / costs.stream_bw_bytes_per_s
    )
    assert result.elapsed_ns == expected
    assert result.copy_in_ns == costs.memcpy_ns(region_bytes)
    assert result.effective_bw_bytes_per_s > 0


def test_stream_rejects_bad_size(rig):
    eng, _node, _linux, kitten = rig
    proc = kitten.create_process("app")
    heap = kitten.heap_region(proc)
    pfns = proc.aspace.table.translate_range(heap.start, 4)
    view = kitten.mem.map_region(pfns)

    def run():
        bench = StreamBenchmark(kitten, proc)
        yield from bench.run(view, 0)

    with pytest.raises(ValueError):
        eng.run_process(run())
