"""Reuse the kernels rig fixture for workload tests."""

from tests.kernels.conftest import rig  # noqa: F401
