"""Baseline semantics: grandfathering, line drift, multiset matching."""

import json

from repro.lint import Baseline, lint_source

DIRTY = "import time\nt = time.time()\n"


def findings_of(src, path="pkg/mod.py"):
    return lint_source(src, path=path)


def test_write_then_split_grandfathers(tmp_path):
    path = tmp_path / "baseline.json"
    found = findings_of(DIRTY)
    assert Baseline.write(str(path), found) == 1
    new, old = Baseline.load(str(path)).split(found)
    assert new == [] and len(old) == 1


def test_missing_file_is_empty_baseline(tmp_path):
    bl = Baseline.load(str(tmp_path / "nope.json"))
    assert len(bl) == 0
    new, old = bl.split(findings_of(DIRTY))
    assert len(new) == 1 and old == []


def test_fingerprint_survives_line_drift(tmp_path):
    path = tmp_path / "baseline.json"
    Baseline.write(str(path), findings_of(DIRTY))
    drifted = "import time\n\n\n# comment pushed the line down\nt = time.time()\n"
    new, old = Baseline.load(str(path)).split(findings_of(drifted))
    assert new == [] and len(old) == 1


def test_multiset_matching_consumes_entries(tmp_path):
    # two identical violations, one baselined -> exactly one stays new
    path = tmp_path / "baseline.json"
    Baseline.write(str(path), findings_of(DIRTY))
    doubled = "import time\nt = time.time()\nu = time.time()\n"
    new, old = Baseline.load(str(path)).split(findings_of(doubled))
    assert len(new) == 1 and len(old) == 1


def test_baseline_is_path_sensitive(tmp_path):
    path = tmp_path / "baseline.json"
    Baseline.write(str(path), findings_of(DIRTY, path="a.py"))
    new, old = Baseline.load(str(path)).split(findings_of(DIRTY, path="b.py"))
    assert len(new) == 1 and old == []


def test_unsupported_version_rejected(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"version": 99, "findings": []}))
    try:
        Baseline.load(str(path))
    except ValueError as exc:
        assert "version" in str(exc)
    else:
        raise AssertionError("expected ValueError")


def test_file_format_is_stable_json(tmp_path):
    path = tmp_path / "baseline.json"
    Baseline.write(str(path), findings_of(DIRTY))
    doc = json.loads(path.read_text())
    assert doc["version"] == 1
    (entry,) = doc["findings"]
    assert entry == {
        "path": "pkg/mod.py",
        "code": "REP001",
        "source_line": "t = time.time()",
    }
