"""Suppression semantics: the ``# repro: noqa[REPxxx] reason=...`` grammar."""

from repro.lint import lint_source

WALLCLOCK = "import time\nt = time.time(){comment}\n"


def codes(src, **kw):
    return sorted(f.code for f in lint_source(src, **kw))


def test_valid_directive_suppresses():
    src = WALLCLOCK.format(
        comment="  # repro: noqa[REP001] reason=progress display only")
    assert codes(src) == []


def test_directive_only_covers_its_own_line():
    src = ("import time\n"
           "# repro: noqa[REP001] reason=wrong line\n"
           "t = time.time()\n")
    # the violation is reported AND the mislocated directive is stale
    assert codes(src) == ["REP000", "REP001"]


def test_wrong_code_does_not_suppress():
    src = WALLCLOCK.format(comment="  # repro: noqa[REP002] reason=mismatch")
    # the mismatch leaves the violation live and the directive stale
    assert codes(src) == ["REP000", "REP001"]


def test_stale_directive_is_a_finding():
    src = "x = 1  # repro: noqa[REP001] reason=the call was deleted\n"
    found = lint_source(src)
    assert [f.code for f in found] == ["REP000"]
    assert "stale noqa[REP001]" in found[0].message


def test_stale_check_skips_unselected_codes():
    # REP001 never ran, so its absence on this line proves nothing
    src = "import time\nt = time.time()  # repro: noqa[REP001] reason=ok\n"
    assert codes(src, select=frozenset({"REP004"})) == []


def test_multiple_codes():
    src = ("import time\n"
           "def f(x=[]):\n"
           "    return time.time(), x  "
           "# repro: noqa[REP001,REP008] reason=fixture\n")
    # only the wallclock call sits on the directive's line; the REP008
    # half of the waiver matched nothing there, so it is reported stale
    assert codes(src) == ["REP000", "REP008"]


def test_bare_noqa_is_a_finding():
    src = WALLCLOCK.format(comment="  # repro: noqa")
    assert codes(src) == ["REP000", "REP001"]


def test_missing_reason_is_a_finding_and_does_not_suppress():
    src = WALLCLOCK.format(comment="  # repro: noqa[REP001]")
    assert codes(src) == ["REP000", "REP001"]


def test_malformed_code_is_a_finding():
    src = WALLCLOCK.format(comment="  # repro: noqa[REP1] reason=typo")
    assert codes(src) == ["REP000", "REP001"]


def test_directive_text_in_string_is_ignored():
    src = 's = "# repro: noqa[broken"\n'
    assert codes(src) == []


def test_directive_in_docstring_is_ignored():
    src = '"""Docs quoting # repro: noqa[REPxxx] reason=... grammar."""\n'
    assert codes(src) == []


def test_stacked_comment_markers_parse():
    # ruff and repro directives share a line (the sim/process.py idiom)
    src = WALLCLOCK.format(
        comment="  # noqa: BLE001  # repro: noqa[REP001] reason=shared line")
    assert codes(src) == []


def test_reason_survives_with_other_noqa_first():
    src = WALLCLOCK.format(comment="  # repro: noqa[REP001] reason=a b c # x")
    assert codes(src) == []


def test_syntax_error_reports_rep000():
    found = lint_source("def broken(:\n")
    assert [f.code for f in found] == ["REP000"]
    assert "syntax error" in found[0].message
