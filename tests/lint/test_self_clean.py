"""Meta-test: the committed tree obeys its own determinism rules.

This is the in-repo twin of the CI ``lint-repro`` gate: ``src/repro``
(the analyzer included) and ``tests/`` must produce zero findings
beyond the committed baseline. If this test fails, either fix the new
violation, suppress it with a reasoned ``# repro: noqa[REPxxx]``, or —
for deliberate grandfathering only — add it to lint-baseline.json.
"""

import pathlib

from repro.lint import Baseline, lint_paths

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


def _relative(findings):
    return [f.render().replace(str(REPO_ROOT) + "/", "") for f in findings]


def test_src_and_tests_lint_clean_or_baselined():
    findings, files_scanned = lint_paths(
        [str(REPO_ROOT / "src" / "repro"), str(REPO_ROOT / "tests")]
    )
    assert files_scanned > 150, "lint walked suspiciously few files"
    new, _old = Baseline.load(str(REPO_ROOT / "lint-baseline.json")).split(
        findings
    )
    assert not new, "non-baselined findings:\n" + "\n".join(_relative(new))


def test_linter_lints_itself():
    # The analyzer package alone, no baseline: it must be spotless.
    findings, files_scanned = lint_paths(
        [str(REPO_ROOT / "src" / "repro" / "lint")]
    )
    assert files_scanned >= 14
    assert not findings, "lint package findings:\n" + "\n".join(
        _relative(findings)
    )


def test_committed_baseline_is_minimal():
    # The gate's promise is an empty-or-near-empty baseline; growing it
    # needs a deliberate decision, not a drive-by.
    baseline = Baseline.load(str(REPO_ROOT / "lint-baseline.json"))
    assert len(baseline) <= 5, (
        "the committed baseline is growing — fix or noqa new findings "
        "instead of grandfathering them"
    )
