"""SARIF 2.1.0 output: structure, code flows, suppressions, validator."""

import copy
import json

import pytest

from repro.lint.cli import RULE_CATALOG, main as lint_main
from repro.lint.engine import lint_paths
from repro.lint.sarif import to_sarif, validate_sarif

TAINTED = (
    "import time\n"
    "\n"
    "\n"
    "def wall():\n"
    "    return time.time()\n"
    "\n"
    "\n"
    "def caller():\n"
    "    return wall()\n"
)


@pytest.fixture
def findings(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    (tmp_path / "mod.py").write_text(TAINTED)
    found, _ = lint_paths(["mod.py"])
    assert [f.code for f in found] == ["REP001", "REP101"]
    return found


def test_real_output_passes_the_validator(findings):
    doc = to_sarif(findings, [], RULE_CATALOG)
    assert validate_sarif(doc) == []
    assert doc["version"] == "2.1.0"
    run = doc["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-lint"
    rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
    assert "REP000" in rule_ids and "REP101" in rule_ids


def test_results_carry_fingerprints_and_levels(findings):
    results = to_sarif(findings, [], RULE_CATALOG)["runs"][0]["results"]
    assert [r["ruleId"] for r in results] == ["REP001", "REP101"]
    for r in results:
        assert r["level"] == "error"
        assert "reproLintFingerprint/v1" in r["partialFingerprints"]
        loc = r["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"] == "mod.py"
        assert loc["region"]["startLine"] >= 1


def test_taint_chain_becomes_a_code_flow(findings):
    results = to_sarif(findings, [], RULE_CATALOG)["runs"][0]["results"]
    direct, taint = results
    flow = taint["codeFlows"][0]["threadFlows"][0]["locations"]
    texts = [step["location"]["message"]["text"] for step in flow]
    assert texts == ["mod.caller calls wall", "mod.wall: source time.time"]
    assert "codeFlows" not in direct


def test_baselined_findings_become_suppressed_results(findings):
    doc = to_sarif([], findings, RULE_CATALOG)
    assert validate_sarif(doc) == []
    for r in doc["runs"][0]["results"]:
        assert r["suppressions"][0]["kind"] == "external"


def test_cli_emits_valid_sarif(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    (tmp_path / "mod.py").write_text(TAINTED)
    out_path = tmp_path / "lint.sarif"
    code = lint_main(["mod.py", "--format", "sarif",
                      "--output", str(out_path),
                      "--baseline", str(tmp_path / "none.json")])
    assert code == 1
    doc = json.loads(out_path.read_text())
    assert validate_sarif(doc) == []
    assert doc == json.loads(capsys.readouterr().out)


def test_validator_rejects_structural_damage(findings):
    good = to_sarif(findings, [], RULE_CATALOG)

    broken = copy.deepcopy(good)
    del broken["version"]
    assert validate_sarif(broken)

    broken = copy.deepcopy(good)
    broken["runs"][0]["results"][0]["level"] = "fatal"
    assert validate_sarif(broken)

    broken = copy.deepcopy(good)
    loc = broken["runs"][0]["results"][0]["locations"][0]
    loc["physicalLocation"]["artifactLocation"]["uri"] = "/abs/mod.py"
    assert validate_sarif(broken)

    broken = copy.deepcopy(good)
    broken["runs"][0]["results"][0]["suppressions"] = [{"kind": "bogus"}]
    assert validate_sarif(broken)

    broken = copy.deepcopy(good)
    del broken["runs"][0]["tool"]["driver"]["name"]
    assert validate_sarif(broken)

    broken = copy.deepcopy(good)
    broken["runs"][0]["results"][0]["locations"][0][
        "physicalLocation"]["region"]["startLine"] = 0
    assert validate_sarif(broken)
