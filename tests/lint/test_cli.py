"""CLI contract: exit codes, JSON schema, dirty-fixture gate behavior."""

import json

import pytest

from repro.lint.cli import main as lint_main
from repro.lint.rules import CODES

#: One violation of every rule, REP001-REP008.
DIRTY_FIXTURE = """\
import heapq
import random
import time

from repro.sim.fastpath import FASTPATH


def wall():
    return time.time()


def draw():
    return random.random()


def materialize(a):
    return list(set(a))


def compare(x):
    return x == 0.5


def gate():
    if FASTPATH.walk_cache:
        x = 1
    return 0


def poke(q):
    heapq.heappush(q, 1)


def swallow():
    try:
        wall()
    except Exception:
        pass


def defaults(x=[]):
    return x
"""


@pytest.fixture
def dirty(tmp_path):
    path = tmp_path / "dirty.py"
    path.write_text(DIRTY_FIXTURE)
    return path


def run(args, capsys):
    code = lint_main([str(a) for a in args])
    return code, capsys.readouterr().out


def test_dirty_fixture_trips_every_rule(dirty, tmp_path, capsys):
    code, out = run([dirty, "--format", "json",
                     "--baseline", tmp_path / "none.json"], capsys)
    assert code == 1
    report = json.loads(out)
    assert sorted(report["counts"]) == sorted(CODES)
    assert all(n == 1 for n in report["counts"].values())
    assert report["ok"] is False


def test_json_schema(dirty, tmp_path, capsys):
    code, out = run([dirty, "--format", "json",
                     "--baseline", tmp_path / "none.json"], capsys)
    report = json.loads(out)
    assert report["version"] == 1
    assert report["files_scanned"] == 1
    assert sorted(report) == ["baselined", "counts", "files_scanned",
                              "findings", "ok", "version"]
    for f in report["findings"]:
        assert sorted(f) == ["code", "col", "line", "message", "path",
                             "severity", "source_line"]
        assert f["severity"] in ("error", "warning")
        assert f["line"] >= 1 and f["col"] >= 0


def test_text_format_renders_locations(dirty, tmp_path, capsys):
    code, out = run([dirty, "--baseline", tmp_path / "none.json"], capsys)
    assert code == 1
    assert f"{dirty}:9:" in out  # the time.time() line
    assert "REP001" in out and "8 findings" in out


def test_select_and_ignore(dirty, tmp_path, capsys):
    code, out = run([dirty, "--format", "json", "--select", "REP001",
                     "--baseline", tmp_path / "none.json"], capsys)
    assert json.loads(out)["counts"] == {"REP001": 1}
    code, out = run([dirty, "--format", "json", "--ignore",
                     "REP001,REP004", "--baseline", tmp_path / "none.json"],
                    capsys)
    counts = json.loads(out)["counts"]
    assert "REP001" not in counts and "REP004" not in counts
    assert len(counts) == 6


def test_unknown_select_code_is_usage_error(dirty, capsys):
    with pytest.raises(SystemExit) as exc:
        lint_main([str(dirty), "--select", "REP999"])
    assert exc.value.code == 2


def test_write_baseline_then_clean(dirty, tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    code, out = run([dirty, "--write-baseline", "--baseline", baseline],
                    capsys)
    assert code == 0 and "8 findings" in out
    code, out = run([dirty, "--baseline", baseline], capsys)
    assert code == 0 and "(8 baselined)" in out


def test_clean_file_exits_zero(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("def f(x):\n    return x + 1\n")
    code, out = run([clean, "--baseline", tmp_path / "none.json"], capsys)
    assert code == 0 and "clean: 1 files" in out


def test_no_python_files_is_usage_error(tmp_path, capsys):
    empty = tmp_path / "empty"
    empty.mkdir()
    assert lint_main([str(empty)]) == 2


def test_output_file(dirty, tmp_path, capsys):
    report_path = tmp_path / "report.json"
    code, _out = run([dirty, "--format", "json", "--output", report_path,
                      "--baseline", tmp_path / "none.json"], capsys)
    assert code == 1
    assert json.loads(report_path.read_text())["ok"] is False


def test_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in CODES + ("REP000",):
        assert code in out


def test_repro_main_dispatches_lint(dirty, tmp_path, capsys):
    from repro.__main__ import main as repro_main

    assert repro_main(["lint", str(dirty),
                       "--baseline", str(tmp_path / "none.json")]) == 1
    out = capsys.readouterr().out
    assert "REP005" in out
