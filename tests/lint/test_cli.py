"""CLI contract: exit codes, JSON schema, dirty-fixture gate behavior."""

import json

import pytest

from repro.lint.cli import main as lint_main
from repro.lint.rules import CODES

#: One violation of every rule, REP001-REP008 + REP101-REP113.
DIRTY_FIXTURE = """\
import functools
import heapq
import os
import random
import time

from repro.sim.fastpath import FASTPATH

REGISTRY = {}


def wall():
    return time.time()


def clocked():
    return wall() + 1


def draw():
    return random.random()


def roll():
    return draw()


def flagged():
    return os.getenv("DIRTY_FLAG")


def keyed(obj):
    return id(obj)


def register(name, value):
    REGISTRY[name] = value


def materialize(a):
    return list(set(a))


def compare(x):
    return x == 0.5


def gate():
    if FASTPATH.walk_cache:
        x = 1
    return 0


def poke(q):
    heapq.heappush(q, 1)


def swallow():
    try:
        materialize([1])
    except Exception:
        pass


def defaults(x=[]):
    return x


@functools.lru_cache
def memo(n):
    return n * 2


class Counter:
    count = 0

    def bump(self):
        self.__class__.count = self.count + 1


def build():
    fns = []
    for i in (1, 2):
        fns.append(lambda: i)
    return fns
"""


@pytest.fixture
def dirty(tmp_path):
    path = tmp_path / "dirty.py"
    path.write_text(DIRTY_FIXTURE)
    return path


def run(args, capsys):
    code = lint_main([str(a) for a in args])
    return code, capsys.readouterr().out


def test_dirty_fixture_trips_every_rule(dirty, tmp_path, capsys):
    code, out = run([dirty, "--format", "json",
                     "--baseline", tmp_path / "none.json"], capsys)
    assert code == 1
    report = json.loads(out)
    assert sorted(report["counts"]) == sorted(CODES)
    assert all(n == 1 for n in report["counts"].values())
    assert report["ok"] is False


def test_json_schema(dirty, tmp_path, capsys):
    code, out = run([dirty, "--format", "json",
                     "--baseline", tmp_path / "none.json"], capsys)
    report = json.loads(out)
    assert report["version"] == 2
    assert report["files_scanned"] == 1
    assert sorted(report) == ["baselined", "counts", "files_scanned",
                              "findings", "ok", "version"]
    for f in report["findings"]:
        assert sorted(f) == ["chain", "code", "col", "line", "message",
                             "path", "severity", "source_line"]
        assert f["severity"] in ("error", "warning")
        assert f["line"] >= 1 and f["col"] >= 0
        for step in f["chain"]:
            assert sorted(step) == ["line", "path", "text"]


def test_taint_findings_carry_chains(dirty, tmp_path, capsys):
    code, out = run([dirty, "--format", "json",
                     "--baseline", tmp_path / "none.json"], capsys)
    by_code = {f["code"]: f for f in json.loads(out)["findings"]}
    for code_ in ("REP101", "REP102"):
        chain = by_code[code_]["chain"]
        assert chain, f"{code_} finding should carry a propagation chain"
        assert "source" in chain[-1]["text"]
    assert by_code["REP103"]["chain"] == []  # direct read, no propagation


def test_text_format_renders_locations(dirty, tmp_path, capsys):
    code, out = run([dirty, "--baseline", tmp_path / "none.json"], capsys)
    assert code == 1
    assert f"{dirty}:13:" in out  # the time.time() line
    assert "REP001" in out and "16 findings" in out


def test_select_and_ignore(dirty, tmp_path, capsys):
    code, out = run([dirty, "--format", "json", "--select", "REP001",
                     "--baseline", tmp_path / "none.json"], capsys)
    assert json.loads(out)["counts"] == {"REP001": 1}
    code, out = run([dirty, "--format", "json", "--ignore",
                     "REP001,REP004", "--baseline", tmp_path / "none.json"],
                    capsys)
    counts = json.loads(out)["counts"]
    assert "REP001" not in counts and "REP004" not in counts
    assert len(counts) == len(CODES) - 2


def test_unknown_select_code_is_usage_error(dirty, capsys):
    with pytest.raises(SystemExit) as exc:
        lint_main([str(dirty), "--select", "REP999"])
    assert exc.value.code == 2


def test_write_baseline_then_clean(dirty, tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    code, out = run([dirty, "--write-baseline", "--baseline", baseline],
                    capsys)
    assert code == 0 and "16 findings" in out
    code, out = run([dirty, "--baseline", baseline], capsys)
    assert code == 0 and "(16 baselined)" in out


def test_clean_file_exits_zero(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("def f(x):\n    return x + 1\n")
    code, out = run([clean, "--baseline", tmp_path / "none.json"], capsys)
    assert code == 0 and "clean: 1 files" in out


def test_no_python_files_is_usage_error(tmp_path, capsys):
    empty = tmp_path / "empty"
    empty.mkdir()
    assert lint_main([str(empty)]) == 2


def test_output_file(dirty, tmp_path, capsys):
    report_path = tmp_path / "report.json"
    code, _out = run([dirty, "--format", "json", "--output", report_path,
                      "--baseline", tmp_path / "none.json"], capsys)
    assert code == 1
    assert json.loads(report_path.read_text())["ok"] is False


def test_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in CODES + ("REP000",):
        assert code in out


def test_repro_main_dispatches_lint(dirty, tmp_path, capsys):
    from repro.__main__ import main as repro_main

    assert repro_main(["lint", str(dirty),
                       "--baseline", str(tmp_path / "none.json")]) == 1
    out = capsys.readouterr().out
    assert "REP005" in out
