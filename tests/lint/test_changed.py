"""``--changed`` mode: git-scoped reporting over a whole-tree graph."""

import subprocess

import pytest

from repro.lint.cli import main as lint_main

GIT = ("git", "-c", "user.email=lint@test", "-c", "user.name=lint")


def git(tmp_path, *args):
    proc = subprocess.run(GIT + args, cwd=tmp_path,
                          capture_output=True, text=True)
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


@pytest.fixture
def repo(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    pkg = tmp_path / "src" / "repro"
    pkg.mkdir(parents=True)
    (pkg / "util.py").write_text(
        "import time\n"
        "\n"
        "\n"
        "def stamp():\n"
        "    return time.time()  "
        "# repro: noqa[REP001] reason=fixture boundary\n"
    )
    (pkg / "app.py").write_text(
        "from repro.util import stamp\n"
        "\n"
        "\n"
        "def handler():\n"
        "    return stamp()\n"
    )
    git(tmp_path, "init", "-q")
    git(tmp_path, "add", ".")
    git(tmp_path, "commit", "-q", "-m", "seed")
    return tmp_path


def run(args, capsys):
    code = lint_main(args)
    return code, capsys.readouterr().out


def test_no_changes_is_clean(repo, capsys):
    code, out = run(["--changed", "--baseline", "none.json"], capsys)
    assert code == 0
    assert "no changed python files" in out


def test_changed_file_is_reported(repo, capsys):
    app = repo / "src" / "repro" / "app.py"
    app.write_text(app.read_text() + "\n\ndef late():\n    return id(late)\n")
    code, out = run(["--changed", "--baseline", "none.json"], capsys)
    assert code == 1
    assert "REP104" in out and "src/repro/app.py:9:" in out


def test_changed_sees_taint_from_unchanged_files(repo, capsys):
    # drop the boundary noqa in util.py: app.py did not change, but the
    # re-linted util.py now seeds taint — only util.py is *reported*
    util = repo / "src" / "repro" / "util.py"
    util.write_text(util.read_text().replace(
        "  # repro: noqa[REP001] reason=fixture boundary", ""))
    code, out = run(["--changed", "--baseline", "none.json"], capsys)
    assert code == 1
    assert "REP001" in out and "app.py" not in out

    # a new caller in the changed set picks up the chain through the
    # whole-tree call graph
    util.write_text(util.read_text() +
                    "\n\ndef relay():\n    return stamp()\n")
    code, out = run(["--changed", "--baseline", "none.json"], capsys)
    assert "REP101" in out


def test_untracked_files_count_as_changed(repo, capsys):
    fresh = repo / "src" / "repro" / "fresh.py"
    fresh.write_text("import os\n\n\ndef f():\n    return os.getenv('X')\n")
    code, out = run(["--changed", "--baseline", "none.json"], capsys)
    assert code == 1
    assert "REP103" in out and "fresh.py" in out


def test_changed_outside_git_is_usage_error(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    monkeypatch.setenv("GIT_CEILING_DIRECTORIES", str(tmp_path.parent))
    assert lint_main(["--changed"]) == 2


def test_changed_with_paths_is_usage_error(repo, capsys):
    with pytest.raises(SystemExit) as exc:
        lint_main(["--changed", "src/repro/app.py"])
    assert exc.value.code == 2
