"""Fixture-driven positive/negative tests, one battery per rule.

Each case is ``(snippet, expected_codes)`` — the snippet is linted in
isolation (optionally under a pretend path) and the produced code
*multiset* must match exactly, so a fixture can assert both "fires
once" and "stays quiet".
"""

from repro.lint import lint_source


def check(snippet, expected, path="pkg/mod.py", **kw):
    found = sorted(f.code for f in lint_source(snippet, path=path, **kw))
    assert found == sorted(expected), (
        f"expected {sorted(expected)} got {found} for:\n{snippet}"
    )


# -- REP001 wallclock --------------------------------------------------------

def test_rep001_direct_call():
    check("import time\nt = time.time()\n", ["REP001"])


def test_rep001_from_import_alias():
    check("from time import perf_counter as pc\npc()\n", ["REP001"])


def test_rep001_datetime_now():
    check("import datetime\nd = datetime.datetime.now()\n", ["REP001"])


def test_rep001_sleep_is_not_a_clock_read():
    check("import time\ntime.sleep(1)\n", [])


def test_rep001_profiler_module_allowlisted():
    check("import time\nt0 = time.perf_counter()\n", [],
          path="src/repro/obs/engine_hooks.py")


def test_rep001_local_name_shadowing_not_flagged():
    # `time` here is a local, not the module; resolution must say None.
    check("def f(time):\n    return time.time()\n", [])


# -- REP002 randomness -------------------------------------------------------

def test_rep002_global_module_function():
    check("import random\nx = random.random()\n", ["REP002"])


def test_rep002_unseeded_random_instance():
    check("import random\nr = random.Random()\n", ["REP002"])


def test_rep002_explicit_none_seed_is_unseeded():
    check("import random\nr = random.Random(None)\n", ["REP002"])


def test_rep002_seeded_random_instance_ok():
    check("import random\nr = random.Random(42)\n", [])


def test_rep002_os_urandom_and_uuid4():
    check("import os\nimport uuid\nos.urandom(8)\nuuid.uuid4()\n",
          ["REP002", "REP002"])


def test_rep002_numpy_default_rng():
    check("import numpy as np\nrng = np.random.default_rng()\n", ["REP002"])
    check("import numpy as np\nrng = np.random.default_rng(7)\n", [])


def test_rep002_instance_methods_ok():
    # Draws on an owned (presumably seeded) generator are the sanctioned
    # pattern; only the global-module functions are flagged.
    check("def f(rng):\n    return rng.choice([1, 2])\n", [])


def test_rep002_retry_backoff_jitter_must_be_seeded():
    # Regression for the overload layer's retry paths: backoff jitter
    # drawn from module-level random is exactly the nondeterminism that
    # breaks byte-identical soak reruns; it must come from an
    # engine-seeded stream (ModuleOverload.jitter_ns).
    check(
        "import random\n"
        "def backoff(base_ns, attempt):\n"
        "    return base_ns * 2 ** attempt + random.randrange(1000)\n",
        ["REP002"],
    )
    check(
        "import random\n"
        "class Retrier:\n"
        "    def __init__(self, seed, name):\n"
        "        self.rng = random.Random(f'overload-client:{seed}:{name}')\n"
        "    def backoff(self, base_ns, attempt):\n"
        "        return base_ns * 2 ** attempt + self.rng.randrange(1000)\n",
        [],
    )


# -- REP003 iteration order --------------------------------------------------

def test_rep003_for_over_set_literal():
    check("for x in {1, 2, 3}:\n    pass\n", ["REP003"])


def test_rep003_set_difference():
    check("def f(a, b):\n    for x in set(a) - set(b):\n        pass\n",
          ["REP003"])


def test_rep003_list_of_set():
    check("def f(a):\n    return list(set(a))\n", ["REP003"])


def test_rep003_comprehension_over_vars():
    check("def f(o):\n    return [k for k in vars(o)]\n", ["REP003"])


def test_rep003_unsorted_listdir():
    check("import os\ndef f(p):\n    return os.listdir(p)\n", ["REP003"])


def test_rep003_sorted_launders():
    check("import os\ndef f(a, p):\n"
          "    for x in sorted(set(a)):\n        pass\n"
          "    return sorted(os.listdir(p))\n", [])


def test_rep003_dict_iteration_ok():
    check("def f(d):\n    for k in d:\n        pass\n", [])


def test_rep003_len_of_set_ok():
    check("def f(a):\n    return len(set(a))\n", [])


# -- REP004 float equality ---------------------------------------------------

def test_rep004_float_literal():
    check("def f(x):\n    return x == 1.5\n", ["REP004"])


def test_rep004_division_operand():
    check("def f(a, b, c):\n    if a / b != c:\n        return 1\n",
          ["REP004"])


def test_rep004_assert_exempt():
    check("def f(x):\n    assert x == 1.5\n", [])


def test_rep004_integer_comparison_ok():
    check("def f(x):\n    return x == 1\n", [])


# -- REP005 fastpath gates ---------------------------------------------------

_FP = "from repro.sim.fastpath import FASTPATH\n"


def test_rep005_gate_without_twin():
    check(_FP + "def f():\n"
          "    if FASTPATH.walk_cache:\n        x = 1\n    return 2\n",
          ["REP005"])


def test_rep005_nested_gates():
    check(_FP + "def f():\n"
          "    if FASTPATH.walk_cache:\n"
          "        if FASTPATH.range_vectorize:\n            return 1\n"
          "        return 2\n"
          "    return 3\n",
          ["REP005"])


def test_rep005_else_twin_ok():
    check(_FP + "def f():\n"
          "    if FASTPATH.engine_slots:\n        a = 1\n"
          "    else:\n        a = 2\n    return a\n", [])


def test_rep005_early_return_twin_ok():
    check(_FP + "def f():\n"
          "    if FASTPATH.ipi_batching:\n        return 1\n"
          "    return 2\n", [])


def test_rep005_negated_gate_early_return_ok():
    check(_FP + "def f(n):\n"
          "    if not FASTPATH.fault_vectorize or n <= 0:\n"
          "        return False\n"
          "    return True\n", [])


def test_rep005_unrelated_if_ok():
    check("def f(x):\n    if x:\n        y = 1\n    return 0\n", [])


_FID = "from repro.sim.fidelity import FIDELITY\n"


def test_rep005_fidelity_gate_without_twin():
    check(_FID + "def f():\n"
          "    if FIDELITY.columnar:\n        x = 1\n    return 2\n",
          ["REP005"])


def test_rep005_fidelity_else_twin_ok():
    check(_FID + "def f():\n"
          "    if FIDELITY.columnar:\n        a = 1\n"
          "    else:\n        a = 2\n    return a\n", [])


def test_rep005_cross_switchboard_nesting():
    check(_FP + _FID + "def f():\n"
          "    if FASTPATH.walk_cache:\n"
          "        if FIDELITY.columnar:\n            return 1\n"
          "        return 2\n"
          "    return 3\n",
          ["REP005"])


# -- REP006 engine discipline ------------------------------------------------

def test_rep006_heapq_outside_engine():
    check("import heapq\ndef f(q):\n    heapq.heappush(q, 1)\n", ["REP006"])


def test_rep006_queue_poke():
    check("def f(engine, cb):\n    engine._queue.append(cb)\n", ["REP006"])


def test_rep006_now_assignment():
    check("def f(engine):\n    engine.now = 5\n", ["REP006"])
    check("def f(engine):\n    engine.now += 5\n", ["REP006"])


def test_rep006_now_read_ok():
    check("def f(engine):\n    return engine.now\n", [])


def test_rep006_engine_file_exempt():
    check("import heapq\ndef f(q):\n    heapq.heappush(q, 1)\n", [],
          path="src/repro/sim/engine.py")


# -- REP007 handler hygiene --------------------------------------------------

def test_rep007_swallowing_broad_except():
    check("try:\n    f()\nexcept Exception:\n    pass\n", ["REP007"])


def test_rep007_bare_except():
    check("try:\n    f()\nexcept:\n    pass\n", ["REP007"])


def test_rep007_reraise_ok():
    check("try:\n    f()\nexcept Exception:\n    raise\n", [])


def test_rep007_counting_ok():
    check("import repro.obs as obs\n"
          "try:\n    f()\n"
          "except Exception:\n    obs.get().counter('x').inc()\n", [])


def test_rep007_narrow_except_ok():
    check("try:\n    f()\nexcept ValueError:\n    pass\n", [])


def test_rep007_broad_in_tuple():
    check("try:\n    f()\nexcept (ValueError, Exception):\n    pass\n",
          ["REP007"])


# -- REP008 mutable defaults -------------------------------------------------

def test_rep008_list_default():
    check("def f(x=[]):\n    return x\n", ["REP008"])


def test_rep008_dict_and_ctor_defaults():
    check("def f(x={}, y=set()):\n    return x, y\n", ["REP008", "REP008"])


def test_rep008_lambda_and_kwonly():
    check("g = lambda x=[]: x\n", ["REP008"])
    check("def f(*, x=dict()):\n    return x\n", ["REP008"])


def test_rep008_immutable_defaults_ok():
    check("def f(x=None, y=(), z='s', n=3):\n    return x, y, z, n\n", [])


# -- select / ignore ---------------------------------------------------------

def test_select_restricts_battery():
    src = "import time\ndef f(x=[]):\n    return time.time()\n"
    check(src, ["REP001", "REP008"])
    check(src, ["REP001"], select=["REP001"])
    check(src, ["REP008"], ignore=["REP001"])


# -- REP101 wallclock taint (transitive) -------------------------------------

def test_rep101_helper_one_call_away():
    check("import time\n"
          "def wall():\n"
          "    return time.time()\n"
          "def caller():\n"
          "    return wall()\n",
          ["REP001", "REP101"])


def test_rep101_noqa_on_source_cuts_the_chain():
    check("import time\n"
          "def wall():\n"
          "    return time.time()  "
          "# repro: noqa[REP001] reason=progress display only\n"
          "def caller():\n"
          "    return wall()\n",
          [])


def test_rep101_untainted_call_is_quiet():
    check("def helper():\n"
          "    return 1\n"
          "def caller():\n"
          "    return helper()\n",
          [])


# -- REP102 entropy taint (transitive) ---------------------------------------

def test_rep102_helper_one_call_away():
    check("import random\n"
          "def draw():\n"
          "    return random.random()\n"
          "def roll():\n"
          "    return draw()\n",
          ["REP002", "REP102"])


def test_rep102_seeded_stream_is_quiet():
    check("import random\n"
          "def draw(rng):\n"
          "    return rng.random()\n"
          "def roll():\n"
          "    return draw(random.Random(7))\n",
          [])


# -- REP103 environment reads (direct + transitive) --------------------------

def test_rep103_direct_getenv():
    check("import os\n"
          "def flagged():\n"
          "    return os.getenv('X')\n",
          ["REP103"])


def test_rep103_environ_get_and_subscript():
    check("import os\n"
          "def a():\n"
          "    return os.environ.get('X')\n"
          "def b():\n"
          "    return os.environ['X']\n",
          ["REP103", "REP103"])


def test_rep103_transitive_caller_also_flagged():
    check("import os\n"
          "def flagged():\n"
          "    return os.getenv('X')\n"
          "def caller():\n"
          "    return flagged()\n",
          ["REP103", "REP103"])


def test_rep103_switchboard_module_is_sanctioned():
    check("import os\n"
          "def load():\n"
          "    return os.getenv('REPRO_FASTPATH')\n",
          [], path="src/repro/sim/fastpath.py")


def test_rep103_whole_environ_copy_for_subprocess_ok():
    check("import os\n"
          "def env():\n"
          "    return dict(os.environ)\n",
          [])


# -- REP104 id()/hash() dependence -------------------------------------------

def test_rep104_id_and_hash():
    check("def k(o):\n    return id(o)\n", ["REP104"])
    check("def h(s):\n    return hash(s)\n", ["REP104"])


def test_rep104_transitive_caller():
    check("def k(o):\n"
          "    return id(o)\n"
          "def use(o):\n"
          "    return k(o)\n",
          ["REP104", "REP104"])


def test_rep104_method_named_hash_ok():
    check("def f(o):\n    return o.hash()\n", [])


# -- REP110 module-level mutable state ---------------------------------------

def test_rep110_subscript_write_to_module_dict():
    check("CACHE = {}\n"
          "def put(k, v):\n"
          "    CACHE[k] = v\n",
          ["REP110"])


def test_rep110_global_rebind():
    check("TOTAL = 0\n"
          "def bump():\n"
          "    global TOTAL\n"
          "    TOTAL = TOTAL + 1\n",
          ["REP110"])


def test_rep110_mutator_method_on_module_list():
    check("EVENTS = []\n"
          "def push(e):\n"
          "    EVENTS.append(e)\n",
          ["REP110"])


def test_rep110_local_container_ok():
    check("def f(k, v):\n"
          "    cache = {}\n"
          "    cache[k] = v\n"
          "    return cache\n",
          [])


def test_rep110_module_constant_read_ok():
    check("LIMIT = 8\n"
          "def f(x):\n"
          "    return x < LIMIT\n",
          [])


# -- REP111 class-attribute mutation -----------------------------------------

def test_rep111_write_through_dunder_class():
    check("class Gate:\n"
          "    armed = False\n"
          "    def arm(self):\n"
          "        self.__class__.armed = True\n",
          ["REP111"])


def test_rep111_class_level_mutable_mutated_via_self():
    check("class Registry:\n"
          "    shared = []\n"
          "    def add(self, x):\n"
          "        self.shared.append(x)\n",
          ["REP111"])


def test_rep111_instance_shadow_makes_it_per_object():
    check("class Registry:\n"
          "    shared = []\n"
          "    def __init__(self):\n"
          "        self.shared = []\n"
          "    def add(self, x):\n"
          "        self.shared.append(x)\n",
          [])


def test_rep111_plain_instance_attr_ok():
    check("class Point:\n"
          "    def move(self, dx):\n"
          "        self.x = dx\n",
          [])


# -- REP112 singletons and process-wide caches -------------------------------

def test_rep112_lru_cache_decorator():
    check("import functools\n"
          "@functools.lru_cache\n"
          "def memo(n):\n"
          "    return n\n",
          ["REP112"])


def test_rep112_module_singleton_attr_store():
    check("class Config:\n"
          "    pass\n"
          "CONFIG = Config()\n"
          "def tune(v):\n"
          "    CONFIG.mode = v\n",
          ["REP112"])


def test_rep112_singleton_read_ok():
    check("class Config:\n"
          "    pass\n"
          "CONFIG = Config()\n"
          "def mode():\n"
          "    return CONFIG.mode\n",
          [])


# -- REP113 loop-variable closure capture ------------------------------------

def test_rep113_lambda_captures_loop_var():
    check("def build():\n"
          "    fns = []\n"
          "    for i in (1, 2):\n"
          "        fns.append(lambda: i)\n"
          "    return fns\n",
          ["REP113"])


def test_rep113_comprehension_loop_var():
    check("def build(xs):\n"
          "    return [lambda: x for x in xs]\n",
          ["REP113"])


def test_rep113_default_binding_ok():
    check("def build():\n"
          "    fns = []\n"
          "    for i in (1, 2):\n"
          "        fns.append(lambda i=i: i)\n"
          "    return fns\n",
          [])


def test_rep113_lambda_outside_loop_ok():
    check("def build(i):\n"
          "    return lambda: i\n",
          [])
