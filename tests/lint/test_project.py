"""Whole-program pass: call graph, taint chains, cross-module state.

Every test writes a small multi-file project into ``tmp_path`` and runs
:func:`lint_paths` from inside it, so module names derive from the
relative paths exactly as they do for the real tree.
"""

import json

import pytest

from repro.lint.engine import lint_paths


@pytest.fixture
def project(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)

    def build(**files):
        for name, text in files.items():
            path = tmp_path / f"{name}.py"
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(text)
        return sorted(f"{name}.py" for name in files)

    return build


UTIL = (
    "import time\n"
    "\n"
    "\n"
    "def stamp():\n"
    "    return time.time()\n"
)

APP = (
    "from util import stamp\n"
    "\n"
    "\n"
    "def handler():\n"
    "    return stamp()\n"
)


def test_cross_module_taint_chain(project):
    paths = project(util=UTIL, app=APP)
    findings, scanned = lint_paths(paths)
    assert scanned == 2
    assert [(f.path, f.code) for f in findings] == [
        ("app.py", "REP101"), ("util.py", "REP001"),
    ]
    chain = findings[0].chain
    assert chain == (
        ("app.py", 5, "app.handler calls stamp"),
        ("util.py", 5, "util.stamp: source time.time"),
    )


def test_chain_rendering_golden(project):
    paths = project(util=UTIL, app=APP)
    findings, _ = lint_paths(paths)
    assert findings[0].render() == (
        "app.py:5:11: REP101 call to stamp transitively reaches "
        "a host-wallclock read (time.time, 1 call away)\n"
        "    app.py:5: app.handler calls stamp\n"
        "    util.py:5: util.stamp: source time.time"
    )


def test_noqa_on_source_is_a_declared_boundary(project):
    sanctioned = UTIL.replace(
        "time.time()",
        "time.time()  # repro: noqa[REP001] reason=progress display only",
    )
    paths = project(util=sanctioned, app=APP)
    findings, _ = lint_paths(paths)
    assert findings == []


def test_noqa_on_edge_cuts_propagation_upward(project):
    mid = (
        "from util import stamp\n"
        "\n"
        "\n"
        "def relay():\n"
        "    return stamp()  # repro: noqa[REP101] reason=test relay\n"
    )
    top = (
        "from mid import relay\n"
        "\n"
        "\n"
        "def outer():\n"
        "    return relay()\n"
    )
    paths = project(util=UTIL, mid=mid, top=top)
    findings, _ = lint_paths(paths)
    # the cut edge is suppressed and nothing above it is tainted;
    # only the direct source itself remains
    assert [(f.path, f.code) for f in findings] == [("util.py", "REP001")]


def test_cross_module_shared_state(project):
    state = (
        "REGISTRY = {}\n"
        "\n"
        "\n"
        "class Config:\n"
        "    pass\n"
        "\n"
        "\n"
        "CONFIG = Config()\n"
    )
    app = (
        "from state import CONFIG, REGISTRY\n"
        "\n"
        "\n"
        "def put(k):\n"
        "    REGISTRY[k] = 1\n"
        "\n"
        "\n"
        "def tune(v):\n"
        "    CONFIG.mode = v\n"
    )
    paths = project(state=state, app=app)
    findings, _ = lint_paths(paths)
    assert [(f.path, f.line, f.code) for f in findings] == [
        ("app.py", 5, "REP110"), ("app.py", 9, "REP112"),
    ]


def test_method_resolution_walks_the_mro(project):
    base = (
        "import time\n"
        "\n"
        "\n"
        "class Base:\n"
        "    def now(self):\n"
        "        return time.time()\n"
    )
    sub = (
        "from base import Base\n"
        "\n"
        "\n"
        "class Sub(Base):\n"
        "    def run(self):\n"
        "        return self.now()\n"
    )
    paths = project(base=base, sub=sub)
    findings, _ = lint_paths(paths)
    assert [(f.path, f.code) for f in findings] == [
        ("base.py", "REP001"), ("sub.py", "REP101"),
    ]


def test_project_scope_widens_graph_but_not_reporting(project):
    helper = (
        "import os\n"
        "\n"
        "\n"
        "def flag():\n"
        "    return os.getenv('X')\n"
    )
    app = (
        "from helper import flag\n"
        "\n"
        "\n"
        "def run():\n"
        "    return flag()\n"
    )
    project(helper=helper, app=app)
    findings, scanned = lint_paths(["app.py"], project_paths=["."])
    assert scanned == 1
    # the edge into the helper is reported on the target; the helper's
    # own direct finding belongs to a file outside the report set
    assert [(f.path, f.code) for f in findings] == [("app.py", "REP103")]


def test_index_cache_skips_unchanged_non_targets(project, tmp_path):
    project(util=UTIL, app=APP, other="X = 1\n")
    stats = {}
    lint_paths(["app.py"], project_paths=["."], cache_file="cache.json",
               stats=stats)
    assert stats == {"indexed": 3, "cached": 0}

    stats = {}
    first, _ = lint_paths(["app.py"], project_paths=["."],
                          cache_file="cache.json", stats=stats)
    # targets always re-parse (per-file rules need the tree)
    assert stats == {"indexed": 1, "cached": 2}

    cache = json.loads((tmp_path / "cache.json").read_text())
    assert set(cache["files"]) == {"app.py", "other.py", "util.py"}
    assert all("sha256" in entry for entry in cache["files"].values())

    # a cached run must produce byte-identical findings
    (tmp_path / "cache.json").unlink()
    cold, _ = lint_paths(["app.py"], project_paths=["."])
    assert [f.render() for f in first] == [f.render() for f in cold]


def test_corrupt_cache_degrades_to_cold_start(project, tmp_path):
    project(util=UTIL, app=APP)
    (tmp_path / "cache.json").write_text("{not json")
    stats = {}
    findings, _ = lint_paths(["app.py"], project_paths=["."],
                             cache_file="cache.json", stats=stats)
    assert stats == {"indexed": 2, "cached": 0}
    assert [f.code for f in findings] == ["REP101"]
